package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2prange/internal/trace"
)

// --- codec round trips and fuzzing ---

// sampleFrames builds a deterministic corpus: every registered codec's
// zero-value prototype in each frame direction its tag is valid for,
// plus frames exercising each optional field (trace context, error
// string, spans, gob-blob body, nil body).
func sampleFrames(t testing.TB) [][]byte {
	var frames []frame
	for typ, tag := range codecByType {
		body := reflect.New(typ).Elem().Interface()
		dir := codecByTag[tag].dir
		if dir&DirRequest != 0 {
			frames = append(frames, frame{kind: kindRequest, id: 1, body: body})
		}
		if dir&DirResponse != 0 {
			frames = append(frames, frame{kind: kindResponse, id: 2, body: body})
		}
	}
	frames = append(frames,
		frame{kind: kindRequest, id: 7}, // nil body
		frame{kind: kindResponse, id: 8, err: "handler exploded"},
		frame{kind: kindRequest, id: 9,
			tc:   &trace.Context{TraceID: 0xfeed, SpanID: 0xbeef, Sampled: true, Caller: "10.0.0.1:4000"},
			body: echoReq{Msg: "traced"}}, // unregistered type -> gob blob
		frame{kind: kindResponse, id: 10, spans: []trace.Wire{{
			TraceID: 1, Parent: 2, SpanID: 3, Name: "serve", DurUS: 42,
			Items: []trace.WireItem{{Kind: "event", Detail: "hit"}},
		}}},
	)
	out := make([][]byte, 0, len(frames))
	for i := range frames {
		b, err := appendFrame(nil, &frames[i])
		if err != nil {
			t.Fatalf("encoding seed frame %d: %v", i, err)
		}
		out = append(out, b)
	}
	return out
}

// TestFrameRoundTripRegistered re-parses every corpus frame and checks
// encode(parse(x)) == x semantically.
func TestFrameRoundTripRegistered(t *testing.T) {
	for i, payload := range sampleFrames(t) {
		fr, err := parseFrame(NewCursor(payload))
		if err != nil {
			t.Fatalf("frame %d failed to parse: %v", i, err)
		}
		again, err := appendFrame(nil, &fr)
		if err != nil {
			t.Fatalf("frame %d failed to re-encode: %v", i, err)
		}
		fr2, err := parseFrame(NewCursor(again))
		if err != nil {
			t.Fatalf("frame %d failed to re-parse: %v", i, err)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Errorf("frame %d changed across a round trip:\nfirst:  %+v\nsecond: %+v", i, fr, fr2)
		}
	}
}

// FuzzFrameParse feeds arbitrary payloads to the frame parser. Whatever
// parses must re-encode and re-parse to the same frame; everything else
// must fail cleanly (no panic, no runaway allocation). Seeds cover every
// registered message type plus truncations of a fully loaded frame.
func FuzzFrameParse(f *testing.F) {
	corpus := sampleFrames(f)
	for _, payload := range corpus {
		f.Add(payload)
	}
	full := corpus[len(corpus)-1]
	for cut := 0; cut < len(full); cut += 3 {
		f.Add(full[:cut]) // truncated frames
	}
	f.Add([]byte{kindRequest, 0x01, flagSpans, 0xff, 0xff, 0xff, 0xff, 0x0f}) // absurd span count
	f.Add(binary.AppendUvarint([]byte{kindRequest, 0x01, 0x00}, tagGobBlob))  // gob blob, no length
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > 1<<16 {
			return
		}
		fr, err := parseFrame(NewCursor(payload))
		if err != nil {
			return
		}
		if len(fr.spans) == 0 {
			fr.spans = nil // flagSpans with count 0 decodes as empty, encodes as absent
		}
		again, err := appendFrame(nil, &fr)
		if err != nil {
			t.Fatalf("parsed frame failed to re-encode: %v", err)
		}
		fr2, err := parseFrame(NewCursor(again))
		if err != nil {
			t.Fatalf("re-encoded frame failed to parse: %v", err)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Errorf("frame changed across a round trip:\nfirst:  %+v\nsecond: %+v", fr, fr2)
		}
	})
}

// TestReadFramePayloadGuards pins the length-prefix defenses: a declared
// length beyond MaxFrame is rejected before any allocation, an overlong
// uvarint prefix is a bad frame, and a torn payload reports how many
// bytes it consumed.
func TestReadFramePayloadGuards(t *testing.T) {
	var rbuf []byte

	oversized := binary.AppendUvarint(nil, uint64(MaxFrame)+1)
	if _, _, err := readFramePayload(bufio.NewReader(bytes.NewReader(oversized)), &rbuf, MaxFrame); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversized length prefix: err = %v, want ErrBadFrame", err)
	}

	overlong := bytes.Repeat([]byte{0x80}, binary.MaxVarintLen64+1)
	if _, _, err := readFramePayload(bufio.NewReader(bytes.NewReader(overlong)), &rbuf, MaxFrame); !errors.Is(err, ErrBadFrame) {
		t.Errorf("overlong uvarint: err = %v, want ErrBadFrame", err)
	}

	torn := append(binary.AppendUvarint(nil, 100), make([]byte, 10)...)
	_, consumed, err := readFramePayload(bufio.NewReader(bytes.NewReader(torn)), &rbuf, MaxFrame)
	if err == nil {
		t.Fatal("torn frame parsed")
	}
	if consumed != len(torn) {
		t.Errorf("torn frame consumed %d bytes, want %d", consumed, len(torn))
	}
}

// TestPreallocHintClampsHostileCounts pins the allocation defense for
// wire-declared element counts: a count inside the payload-length guard
// can still be millions (one byte per element minimum), so decoders must
// start small and let append grow.
func TestPreallocHintClampsHostileCounts(t *testing.T) {
	if got := PreallocHint(3); got != 3 {
		t.Errorf("PreallocHint(3) = %d, want 3", got)
	}
	if got := PreallocHint(16 << 20); got != preallocLimit {
		t.Errorf("PreallocHint(16M) = %d, want %d", got, preallocLimit)
	}
}

// TestFrameRejectsWrongDirectionTag checks that a tag registered for one
// frame direction does not decode in the other: a hostile client must
// not be able to drive a server through response decoders.
func TestFrameRejectsWrongDirectionTag(t *testing.T) {
	cases := []frame{
		{kind: kindRequest, id: 1, body: RefsResp{Refs: nil}}, // response tag in a request
		{kind: kindResponse, id: 2, body: FindSuccessorReq{}}, // request tag in a response
	}
	for i := range cases {
		payload, err := appendFrame(nil, &cases[i])
		if err != nil {
			t.Fatalf("case %d failed to encode: %v", i, err)
		}
		if _, err := parseFrame(NewCursor(payload)); !errors.Is(err, ErrBadFrame) {
			t.Errorf("case %d: wrong-direction tag parsed with err = %v, want ErrBadFrame", i, err)
		}
	}
}

// TestLargeResponseRidesBinaryPath pins the asymmetric frame limit: a
// response far beyond MaxFrame (the request cap) must still cross the
// multiplexed binary connection, because bulk payloads like
// FetchDataResp rode the gob path without any size limit before the
// binary codec existed.
func TestLargeResponseRidesBinaryPath(t *testing.T) {
	big := string(bytes.Repeat([]byte{'x'}, MaxFrame+(1<<20)))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(ln, func(req any) (any, error) {
		return echoResp{Msg: big}, nil
	})
	defer srv.Close()
	caller := NewTCPCaller()
	caller.CallTimeout = 30 * time.Second
	defer caller.Close()
	resp, err := caller.Call(srv.Addr(), echoReq{Msg: "gimme"})
	if err != nil {
		t.Fatalf("oversized response failed: %v", err)
	}
	if got := resp.(echoResp).Msg; len(got) != len(big) {
		t.Errorf("response truncated: got %d bytes, want %d", len(got), len(big))
	}
	caller.mu.Lock()
	nmux := len(caller.muxes)
	caller.mu.Unlock()
	if nmux != 1 {
		t.Errorf("large response used %d mux connections, want 1 (no gob fallback)", nmux)
	}
}

// TestGroupWriterFlushDeadline wedges a groupWriter against a pipe
// nobody reads: the armed write deadline must fail the flush (and poison
// the writer) instead of blocking in Write forever.
func TestGroupWriterFlushDeadline(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	defer client.Close()
	gw := &groupWriter{conn: client}
	f := frame{kind: kindResponse, id: 1, body: echoResp{Msg: "stuck"}}
	errc := make(chan error, 1)
	go func() { errc <- gw.writeFrame(&f, 50*time.Millisecond) }()
	select {
	case err := <-errc:
		if err == nil || !isTimeout(err) {
			t.Errorf("wedged flush returned %v, want a timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flush did not return after its write deadline")
	}
	if err := gw.writeFrame(&f, 50*time.Millisecond); err == nil {
		t.Error("writer not poisoned after a failed flush")
	}
}

// --- negotiation ---

// legacyGobServer emulates a pre-binary-codec peer: a raw listener that
// speaks only the sequential gob protocol and drops any connection whose
// stream does not decode (which is what a binary hello looks like to it).
func legacyGobServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				for {
					var req envelope
					if err := dec.Decode(&req); err != nil {
						return // a binary hello lands here
					}
					resp, herr := echoHandler(req.Body)
					out := envelope{Body: resp}
					if herr != nil {
						out.Err = herr.Error()
					}
					if err := enc.Encode(out); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }
}

// TestBinaryFallsBackToLegacyGobServer checks protocol negotiation from
// the client side: a default (binary) caller hitting a gob-only server
// must detect the dropped hello, mark the address, and complete every
// call over gob — including calls after the first.
func TestBinaryFallsBackToLegacyGobServer(t *testing.T) {
	addr, stop := legacyGobServer(t)
	defer stop()
	caller := NewTCPCaller()
	defer caller.Close()
	for i := 0; i < 3; i++ {
		resp, err := caller.Call(addr, echoReq{Msg: "legacy"})
		if err != nil {
			t.Fatalf("call %d over fallback: %v", i, err)
		}
		if resp.(echoResp).Msg != "legacy" {
			t.Errorf("call %d resp = %v", i, resp)
		}
	}
	caller.mu.Lock()
	_, fellBack := caller.gobAddrs[addr]
	nmux := len(caller.muxes)
	caller.mu.Unlock()
	if !fellBack {
		t.Error("address not marked as gob after a dropped hello")
	}
	if nmux != 0 {
		t.Errorf("%d mux connections live after fallback, want 0", nmux)
	}
}

// TestHandshakeTimeoutDoesNotLatchGob hits a server that accepts but
// never answers the hello: the call must fail with an error — a wedged
// peer is not evidence of a gob-only one — and the address must NOT be
// latched onto the gob fallback, so a binary-capable peer recovering
// from a hiccup keeps multiplexing.
func TestHandshakeTimeoutDoesNotLatchGob(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var held []net.Conn
	var hmu sync.Mutex
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			hmu.Lock()
			held = append(held, conn) // accept, read nothing, answer nothing
			hmu.Unlock()
		}
	}()
	defer func() {
		hmu.Lock()
		for _, c := range held {
			c.Close()
		}
		hmu.Unlock()
	}()

	caller := NewTCPCaller()
	caller.DialTimeout = 100 * time.Millisecond
	defer caller.Close()
	addr := ln.Addr().String()
	if _, err := caller.Call(addr, echoReq{Msg: "hello?"}); err == nil {
		t.Fatal("call against a mute server succeeded")
	}
	caller.mu.Lock()
	_, latched := caller.gobAddrs[addr]
	caller.mu.Unlock()
	if latched {
		t.Error("handshake timeout latched the address onto gob")
	}
}

// TestGobLatchAgesOut pre-latches an address as gob with a stamp older
// than gobReprobeAfter, then calls a binary-capable server: the caller
// must re-probe, succeed over the multiplexed path, and drop the latch.
func TestGobLatchAgesOut(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(ln, echoHandler)
	defer srv.Close()
	caller := NewTCPCaller()
	defer caller.Close()
	addr := srv.Addr()
	caller.mu.Lock()
	caller.gobAddrs[addr] = time.Now().Add(-gobReprobeAfter - time.Minute)
	caller.mu.Unlock()

	resp, err := caller.Call(addr, echoReq{Msg: "again"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(echoResp).Msg != "again" {
		t.Errorf("resp = %v", resp)
	}
	caller.mu.Lock()
	_, stillLatched := caller.gobAddrs[addr]
	nmux := len(caller.muxes)
	caller.mu.Unlock()
	if stillLatched {
		t.Error("expired gob latch survived a successful binary re-probe")
	}
	if nmux != 1 {
		t.Errorf("re-probe used %d mux connections, want 1", nmux)
	}
}

// TestForcedGobCodec checks the escape hatch: Codec=CodecGob must never
// even attempt binary negotiation against a modern server.
func TestForcedGobCodec(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(ln, echoHandler)
	defer srv.Close()
	caller := NewTCPCaller()
	caller.Codec = CodecGob
	defer caller.Close()
	resp, err := caller.Call(srv.Addr(), echoReq{Msg: "forced"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(echoResp).Msg != "forced" {
		t.Errorf("resp = %v", resp)
	}
	caller.mu.Lock()
	nmux := len(caller.muxes)
	caller.mu.Unlock()
	if nmux != 0 {
		t.Errorf("forced gob caller opened %d mux connections", nmux)
	}
}

// --- multiplexing ---

// TestMuxPipelinesBehindSlowHandler proves requests share one connection
// without head-of-line blocking: a fast call issued while a slow call is
// in flight on the same mux must complete long before the slow one.
func TestMuxPipelinesBehindSlowHandler(t *testing.T) {
	const delay = 200 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(ln, func(req any) (any, error) {
		if req.(echoReq).Msg == "slow" {
			time.Sleep(delay)
		}
		return echoResp{Msg: req.(echoReq).Msg}, nil
	})
	defer srv.Close()
	caller := NewTCPCaller()
	defer caller.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := caller.Call(srv.Addr(), echoReq{Msg: "slow"})
		slowDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the slow request get on the wire
	start := time.Now()
	if _, err := caller.Call(srv.Addr(), echoReq{Msg: "fast"}); err != nil {
		t.Fatal(err)
	}
	if fastTook := time.Since(start); fastTook > delay/2 {
		t.Errorf("fast call took %v behind a %v handler; pipelining is not working", fastTook, delay)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
	caller.mu.Lock()
	nmux := len(caller.muxes)
	caller.mu.Unlock()
	if nmux != 1 {
		t.Errorf("calls used %d connections, want 1 multiplexed", nmux)
	}
}

// TestMuxCloseRacesInFlightCalls closes the caller while calls sit in
// flight on the multiplexed path: every call must return promptly —
// either its real response or ErrCallerClosed — and no goroutine may
// deadlock waiting for a correlation id that will never resolve.
func TestMuxCloseRacesInFlightCalls(t *testing.T) {
	const delay = 50 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(ln, func(req any) (any, error) {
		time.Sleep(delay)
		return echoResp{Msg: "late"}, nil
	})
	defer srv.Close()

	for round := 0; round < 5; round++ {
		caller := NewTCPCaller()
		var wg sync.WaitGroup
		var unexpected atomic.Int32
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := caller.Call(srv.Addr(), echoReq{Msg: "inflight"})
				if err != nil && !errors.Is(err, ErrCallerClosed) && !Retryable(err) {
					t.Errorf("in-flight call failed oddly: %v", err)
					unexpected.Add(1)
				}
			}()
		}
		time.Sleep(delay / 2) // calls are now pipelined and waiting
		caller.Close()

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("in-flight calls did not return after Close: deadlock")
		}
		if _, err := caller.Call(srv.Addr(), echoReq{}); !errors.Is(err, ErrCallerClosed) {
			t.Fatalf("call after Close = %v, want ErrCallerClosed", err)
		}
	}
}

// TestMuxHandlerPanicBecomesError checks the serveBinary recovery path:
// a panicking handler answers with an error frame (counted in
// transport.panics) instead of tearing down the connection — the next
// call on the same mux still works.
func TestMuxHandlerPanicBecomesError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(ln, func(req any) (any, error) {
		if req.(echoReq).Msg == "panic" {
			panic("kaboom")
		}
		return echoResp{Msg: "fine"}, nil
	})
	defer srv.Close()
	caller := NewTCPCaller()
	defer caller.Close()

	before := metPanics.Value()
	_, err = caller.Call(srv.Addr(), echoReq{Msg: "panic"})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("panicking handler returned %v, want RemoteError", err)
	}
	if metPanics.Value() != before+1 {
		t.Errorf("transport.panics = %d, want %d", metPanics.Value(), before+1)
	}
	if _, err := caller.Call(srv.Addr(), echoReq{Msg: "ok"}); err != nil {
		t.Fatalf("call after handler panic: %v (connection should survive)", err)
	}
}
