package transport

import (
	"math/rand"
	"sync"
	"time"

	"p2prange/internal/metrics"
	"p2prange/internal/trace"
)

// RetryConfig parameterizes a RetryCaller.
type RetryConfig struct {
	// Attempts is the total number of tries per call (default 3).
	Attempts int
	// BaseDelay is the pause before the first retry; it doubles on each
	// subsequent retry up to MaxDelay, with ±50% jitter. Zero means no
	// pause — appropriate for in-memory simulations; live deployments
	// should set a small delay so the ring has time to repair.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 1s when BaseDelay is
	// set).
	MaxDelay time.Duration
	// Seed makes the jitter deterministic; 0 seeds from 1.
	Seed int64
	// Stats counts retries when non-nil.
	Stats *metrics.RouteStats
}

// RetryCaller wraps a Caller with bounded retries and exponential
// backoff plus jitter. Only transport-level failures (see Retryable) are
// retried: every request in this system is idempotent at the protocol
// level, but a handler error is a definitive answer from a live node and
// retrying it cannot help. Safe for concurrent use.
type RetryCaller struct {
	inner Caller
	cfg   RetryConfig

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetryCaller wraps inner with the given retry policy.
func NewRetryCaller(inner Caller, cfg RetryConfig) *RetryCaller {
	if cfg.Attempts <= 0 {
		cfg.Attempts = 3
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &RetryCaller{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Call implements Caller: forward to the wrapped caller, retrying
// transport-level failures up to Attempts times.
func (r *RetryCaller) Call(addr string, req any) (any, error) {
	var resp any
	err := r.retry(func() error {
		var e error
		resp, e = r.inner.Call(addr, req)
		return e
	})
	if err != nil && Retryable(err) {
		return nil, err // all attempts failed in transit
	}
	return resp, err
}

// CallCtx implements ContextCaller with the same retry policy. Each
// attempt re-sends the same context; the fragments of the attempt that
// succeeds are the ones returned, so a retried call never grafts a
// failed attempt's partial subtree twice.
func (r *RetryCaller) CallCtx(addr string, tc trace.Context, req any) (any, []trace.Wire, error) {
	var (
		resp  any
		spans []trace.Wire
	)
	err := r.retry(func() error {
		var e error
		resp, spans, e = CallCtx(r.inner, addr, tc, req)
		return e
	})
	if err != nil && Retryable(err) {
		return nil, nil, err // all attempts failed in transit
	}
	return resp, spans, err
}

// retry runs do with the configured attempt and backoff policy. It
// returns nil when an attempt succeeds or the first non-retryable error;
// the attempt's own results are captured by the closure. A failed run
// returns the last retryable error.
func (r *RetryCaller) retry(do func() error) error {
	delay := r.cfg.BaseDelay
	var lastErr error
	for attempt := 0; attempt < r.cfg.Attempts; attempt++ {
		if attempt > 0 {
			r.cfg.Stats.AddRetry()
			if delay > 0 {
				time.Sleep(r.jitter(delay))
				delay *= 2
				if delay > r.cfg.MaxDelay {
					delay = r.cfg.MaxDelay
				}
			}
		}
		err := do()
		if err == nil || !Retryable(err) {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// jitter spreads d over [d/2, 3d/2) so synchronized failures do not
// produce synchronized retry storms.
func (r *RetryCaller) jitter(d time.Duration) time.Duration {
	r.mu.Lock()
	f := 0.5 + r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(float64(d) * f)
}

var _ ContextCaller = (*RetryCaller)(nil)
