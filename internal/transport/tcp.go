package transport

import (
	"bufio"
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"p2prange/internal/trace"
)

// RegisterType registers a request or response type for gob transfer.
// Every concrete type sent through the TCP transport must be registered by
// both ends (the peer and chord packages register theirs in init).
func RegisterType(v any) { gob.Register(v) }

// envelope frames one request or response on the wire. TC carries the
// caller's trace context on requests (nil when unsampled, so untraced
// traffic pays no encoding cost); Spans carries completed remote span
// fragments back on responses. Both fields are concrete types, so no
// gob registration beyond the envelope itself is needed.
type envelope struct {
	Body  any
	Err   string
	TC    *trace.Context
	Spans []trace.Wire
}

func init() {
	gob.Register(envelope{})
}

// TCPServer serves a Handler on a TCP listener, one goroutine per
// connection, multiple sequential requests per connection.
type TCPServer struct {
	ln      net.Listener
	handler TracedHandler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServeTCP starts serving h on ln until Close. Requests arriving with a
// trace context serve untraced; use ServeTCPTraced to propagate.
func ServeTCP(ln net.Listener, h Handler) *TCPServer {
	return ServeTCPTraced(ln, Traced(h))
}

// ServeTCPTraced starts serving a trace-propagating handler on ln until
// Close. Span fragments the handler returns ride back on the response
// envelope.
func ServeTCPTraced(ln net.Listener, h TracedHandler) *TCPServer {
	s := &TCPServer{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn sniffs the client's protocol from the first byte — the
// binary hello can never start a gob stream — and serves whichever the
// client speaks. New clients get framed binary multiplexing; old gob
// clients keep working unchanged.
func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 32<<10)
	hello, err := br.Peek(len(binaryMagic))
	if err == nil && [5]byte(hello) == binaryMagic {
		br.Discard(len(binaryMagic))
		s.serveBinary(conn, br)
		return
	}
	s.serveGob(conn, br)
}

// serveGob is the legacy protocol loop: one gob envelope per request,
// strictly sequential per connection. A handler panic is converted to an
// envelope error instead of crashing the process.
func (s *TCPServer) serveGob(conn net.Conn, br *bufio.Reader) {
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)
	for {
		var req envelope
		if err := dec.Decode(&req); err != nil {
			return // io.EOF on clean close; anything else drops the conn
		}
		var tc trace.Context
		if req.TC != nil {
			tc = *req.TC
		}
		resp, spans, err := safeHandle(s.handler, tc, req.Body)
		out := envelope{Body: resp, Spans: spans}
		if err != nil {
			out.Err = err.Error()
		}
		if err := enc.Encode(out); err != nil {
			return
		}
	}
}

// Close stops accepting, closes open connections, and waits for handlers.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// DefaultPoolSize is the per-address connection pool size used when
// TCPCaller.PoolSize is zero. A handful of connections lets concurrent
// calls to one peer proceed in parallel instead of serializing whole
// round trips behind a single socket.
const DefaultPoolSize = 4

// TCPCaller is the client side of the TCP transport. It keeps a small
// pool of connections per remote address, dialing lazily and re-dialing
// after failures. Safe for concurrent use; up to PoolSize calls to the
// same address proceed in parallel, further calls wait for a free
// connection. Transport-level failures are classified with ErrNetwork so
// retry layers can distinguish them from handler errors.
type TCPCaller struct {
	// DialTimeout bounds connection establishment (default 3s).
	DialTimeout time.Duration
	// CallTimeout bounds a single request/response round trip (default 5s).
	CallTimeout time.Duration
	// PoolSize is the number of connections kept per remote address
	// (default DefaultPoolSize). Only the gob path pools; the binary
	// path multiplexes one connection per address. Set before the first
	// Call.
	PoolSize int
	// Codec selects the wire protocol: CodecBinary (default) negotiates
	// the framed binary codec per address with automatic per-address
	// fallback to gob, CodecGob forces gob. Set before the first Call.
	Codec string

	mu       sync.Mutex
	pools    map[string]chan *tcpConn
	muxes    map[string]*muxConn
	gobAddrs map[string]time.Time // when each address negotiated down to gob
	closed   bool
}

// gobReprobeAfter ages out a per-address gob latch. A peer that once
// looked gob-only (e.g. it restarted mid-handshake) gets re-probed for
// the binary protocol after this long, so a transient misclassification
// costs minutes of fallback, not the caller's lifetime; a genuine
// legacy peer just re-latches at one extra dial per interval.
const gobReprobeAfter = 5 * time.Minute

// tcpConn is one pooled connection slot. A slot is owned exclusively by
// the goroutine that received it from the pool channel, so no lock is
// needed; the connection inside may be nil (not yet dialed or reset).
type tcpConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewTCPCaller returns a caller with default timeouts and pool size.
func NewTCPCaller() *TCPCaller {
	return &TCPCaller{
		DialTimeout: 3 * time.Second,
		CallTimeout: 5 * time.Second,
		PoolSize:    DefaultPoolSize,
		pools:       make(map[string]chan *tcpConn),
		muxes:       make(map[string]*muxConn),
		gobAddrs:    make(map[string]time.Time),
	}
}

// pool returns the connection pool for addr, creating it on first use.
func (c *TCPCaller) pool(addr string) (chan *tcpConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrCallerClosed
	}
	p, ok := c.pools[addr]
	if !ok {
		size := c.PoolSize
		if size <= 0 {
			size = DefaultPoolSize
		}
		p = make(chan *tcpConn, size)
		for i := 0; i < size; i++ {
			p <- &tcpConn{}
		}
		c.pools[addr] = p
	}
	return p, nil
}

// Call implements Caller over TCP. A transport-level failure invalidates
// the pooled connection so the next call on that slot re-dials.
func (c *TCPCaller) Call(addr string, req any) (any, error) {
	resp, err := c.roundTrip(addr, envelope{Body: req})
	if err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return resp.Body, &RemoteError{Msg: resp.Err}
	}
	return resp.Body, nil
}

// CallCtx implements ContextCaller over TCP: the trace context rides the
// request envelope and remote span fragments come back on the response.
func (c *TCPCaller) CallCtx(addr string, tc trace.Context, req any) (any, []trace.Wire, error) {
	env := envelope{Body: req}
	if tc.Sampled {
		env.TC = &tc
	}
	resp, err := c.roundTrip(addr, env)
	if err != nil {
		return nil, nil, err
	}
	if resp.Err != "" {
		return resp.Body, resp.Spans, &RemoteError{Msg: resp.Err}
	}
	return resp.Body, resp.Spans, nil
}

// roundTrip sends one envelope and decodes the reply, dispatching to the
// multiplexed binary path or the pooled gob path per the negotiated
// protocol for addr.
func (c *TCPCaller) roundTrip(addr string, env envelope) (envelope, error) {
	metCalls.Inc()
	if c.Codec != CodecGob {
		c.mu.Lock()
		latched, viaGob := c.gobAddrs[addr]
		if viaGob && time.Since(latched) > gobReprobeAfter {
			delete(c.gobAddrs, addr) // latch aged out: re-probe binary
			viaGob = false
		}
		c.mu.Unlock()
		if !viaGob {
			m, fallback, err := c.mux(addr)
			if err != nil {
				return envelope{}, err
			}
			if !fallback {
				return m.roundTrip(env, c.CallTimeout)
			}
			c.mu.Lock()
			if c.gobAddrs == nil {
				c.gobAddrs = make(map[string]time.Time)
			}
			c.gobAddrs[addr] = time.Now()
			c.mu.Unlock()
		}
	}
	return c.gobRoundTrip(addr, env)
}

// gobRoundTrip is the legacy gob path: one call per pooled connection
// slot, whole round trips serialized behind PoolSize sockets.
func (c *TCPCaller) gobRoundTrip(addr string, env envelope) (envelope, error) {
	pool, err := c.pool(addr)
	if err != nil {
		return envelope{}, err
	}
	tc := <-pool
	defer func() {
		// If Close ran while this call was in flight, drop the connection
		// instead of returning a live socket to a closed caller.
		c.mu.Lock()
		if c.closed {
			tc.reset()
		}
		c.mu.Unlock()
		pool <- tc
	}()
	if tc.conn == nil {
		conn, err := net.DialTimeout("tcp", addr, c.DialTimeout)
		if err != nil {
			return envelope{}, netErrf("transport: dial %s: %w", addr, err)
		}
		// Re-check closed under the lock before keeping the fresh
		// connection: a Close that raced the dial must not leak it.
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return envelope{}, ErrCallerClosed
		}
		c.mu.Unlock()
		tc.conn = conn
		tc.enc = gob.NewEncoder(conn)
		tc.dec = gob.NewDecoder(conn)
	}
	if c.CallTimeout > 0 {
		if err := tc.conn.SetDeadline(time.Now().Add(c.CallTimeout)); err != nil {
			tc.reset()
			return envelope{}, netErrf("transport: deadline for %s: %w", addr, err)
		}
	}
	if err := tc.enc.Encode(env); err != nil {
		tc.reset()
		return envelope{}, netErrf("transport: send to %s: %w", addr, err)
	}
	var resp envelope
	if err := tc.dec.Decode(&resp); err != nil {
		tc.reset()
		if errors.Is(err, io.EOF) {
			return envelope{}, netErrf("transport: %s closed connection", addr)
		}
		return envelope{}, netErrf("transport: receive from %s: %w", addr, err)
	}
	return resp, nil
}

// reset drops the broken connection; the caller must own the slot.
func (tc *tcpConn) reset() {
	if tc.conn != nil {
		tc.conn.Close()
		tc.conn = nil
		tc.enc = nil
		tc.dec = nil
	}
}

// Close marks the caller closed and closes every idle pooled connection.
// Calls already in flight finish (or time out) and drop their connection
// on return; subsequent calls fail with ErrCallerClosed.
func (c *TCPCaller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pools := c.pools
	muxes := make([]*muxConn, 0, len(c.muxes))
	for _, m := range c.muxes {
		muxes = append(muxes, m)
	}
	c.mu.Unlock()
	for _, m := range muxes {
		m.fail(ErrCallerClosed)
	}
	for _, p := range pools {
		var drained []*tcpConn
	drain:
		for len(drained) < cap(p) {
			select {
			case tc := <-p:
				tc.reset()
				drained = append(drained, tc)
			default:
				break drain
			}
		}
		for _, tc := range drained {
			p <- tc // keep the slots so waiting callers wake and bail
		}
	}
}

var _ ContextCaller = (*TCPCaller)(nil)
