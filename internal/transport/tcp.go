package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// RegisterType registers a request or response type for gob transfer.
// Every concrete type sent through the TCP transport must be registered by
// both ends (the peer and chord packages register theirs in init).
func RegisterType(v any) { gob.Register(v) }

// envelope frames one request or response on the wire.
type envelope struct {
	Body any
	Err  string
}

func init() {
	gob.Register(envelope{})
}

// TCPServer serves a Handler on a TCP listener, one goroutine per
// connection, multiple sequential requests per connection.
type TCPServer struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServeTCP starts serving h on ln until Close.
func ServeTCP(ln net.Listener, h Handler) *TCPServer {
	s := &TCPServer{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req envelope
		if err := dec.Decode(&req); err != nil {
			return // io.EOF on clean close; anything else drops the conn
		}
		resp, err := s.handler(req.Body)
		out := envelope{Body: resp}
		if err != nil {
			out.Err = err.Error()
		}
		if err := enc.Encode(out); err != nil {
			return
		}
	}
}

// Close stops accepting, closes open connections, and waits for handlers.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// TCPCaller is the client side of the TCP transport. It keeps one pooled
// connection per remote address, re-dialing on failure. Safe for
// concurrent use; concurrent calls to the same address serialize on its
// connection.
type TCPCaller struct {
	// DialTimeout bounds connection establishment (default 3s).
	DialTimeout time.Duration
	// CallTimeout bounds a single request/response round trip (default 5s).
	CallTimeout time.Duration

	mu    sync.Mutex
	conns map[string]*tcpConn
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewTCPCaller returns a caller with default timeouts.
func NewTCPCaller() *TCPCaller {
	return &TCPCaller{
		DialTimeout: 3 * time.Second,
		CallTimeout: 5 * time.Second,
		conns:       make(map[string]*tcpConn),
	}
}

func (c *TCPCaller) get(addr string) (*tcpConn, error) {
	c.mu.Lock()
	tc, ok := c.conns[addr]
	if !ok {
		tc = &tcpConn{}
		c.conns[addr] = tc
	}
	c.mu.Unlock()

	tc.mu.Lock() // held until the call completes; released by caller
	if tc.conn == nil {
		conn, err := net.DialTimeout("tcp", addr, c.DialTimeout)
		if err != nil {
			tc.mu.Unlock()
			return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
		}
		tc.conn = conn
		tc.enc = gob.NewEncoder(conn)
		tc.dec = gob.NewDecoder(conn)
	}
	return tc, nil
}

// Call implements Caller over TCP. A transport-level failure invalidates
// the pooled connection so the next call re-dials.
func (c *TCPCaller) Call(addr string, req any) (any, error) {
	tc, err := c.get(addr)
	if err != nil {
		return nil, err
	}
	defer tc.mu.Unlock()
	if c.CallTimeout > 0 {
		if err := tc.conn.SetDeadline(time.Now().Add(c.CallTimeout)); err != nil {
			tc.reset()
			return nil, err
		}
	}
	if err := tc.enc.Encode(envelope{Body: req}); err != nil {
		tc.reset()
		return nil, fmt.Errorf("transport: send to %s: %w", addr, err)
	}
	var resp envelope
	if err := tc.dec.Decode(&resp); err != nil {
		tc.reset()
		if errors.Is(err, io.EOF) {
			err = fmt.Errorf("transport: %s closed connection", addr)
		}
		return nil, err
	}
	if resp.Err != "" {
		return resp.Body, &RemoteError{Msg: resp.Err}
	}
	return resp.Body, nil
}

// reset drops the broken connection; tc.mu must be held.
func (tc *tcpConn) reset() {
	if tc.conn != nil {
		tc.conn.Close()
		tc.conn = nil
		tc.enc = nil
		tc.dec = nil
	}
}

// Close closes all pooled connections.
func (c *TCPCaller) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, tc := range c.conns {
		tc.mu.Lock()
		tc.reset()
		tc.mu.Unlock()
	}
	c.conns = make(map[string]*tcpConn)
}

var _ Caller = (*TCPCaller)(nil)
