package transport

import (
	"errors"
	"fmt"
	"time"

	"p2prange/internal/metrics"
	"p2prange/internal/trace"
)

// The Default-registry transport.* family: calls counts every request a
// caller issues (in-memory or TCP), errors counts transport-level
// delivery failures — the denominators and numerators behind the retry
// and reroute rates of route.*.
var (
	metCalls  = metrics.Default.Counter("transport.calls")
	metErrors = metrics.Default.Counter("transport.errors")
	// metPanics counts handler panics recovered by the server loops and
	// converted to envelope errors instead of crashing the process.
	metPanics = metrics.Default.Counter("transport.panics")
	// metCallUS is the round-trip latency of calls issued through CallCtx
	// — the peer protocol's remote path. Sampled calls pin their trace ID
	// to the bucket as an exemplar, so a latency outlier in the Prometheus
	// exposition names a trace the flight recorder can look up.
	metCallUS = metrics.Default.IntHistogram("transport.call_us")
)

// Caller issues a request to the node at addr and returns its response.
// Requests and responses are plain values; over TCP they must be
// gob-encodable and registered with RegisterType.
type Caller interface {
	Call(addr string, req any) (any, error)
}

// Handler serves requests arriving at one node. It returns the response
// value or an error; transports carry the error back to the caller.
type Handler func(req any) (any, error)

// TracedHandler is a Handler that additionally receives the caller's
// trace context and returns any span fragments recorded while serving,
// for the transport to piggyback on the response. An unsampled (zero)
// context must behave exactly like a plain Handler call.
type TracedHandler func(tc trace.Context, req any) (any, []trace.Wire, error)

// Traced adapts a plain Handler to the traced interface: the context is
// ignored and no fragments are produced.
func Traced(h Handler) TracedHandler {
	return func(_ trace.Context, req any) (any, []trace.Wire, error) {
		resp, err := h(req)
		return resp, nil, err
	}
}

// ContextCaller is a Caller that can propagate trace context and carry
// remote span fragments back. Both transports implement it; wrapper
// callers (retry, fault) forward it when their inner caller does.
type ContextCaller interface {
	Caller
	CallCtx(addr string, tc trace.Context, req any) (any, []trace.Wire, error)
}

// CallCtx issues a traced call through c when it supports propagation,
// degrading to an untraced Call (no fragments) otherwise. Instrumented
// code calls this instead of type-asserting at every site. Every call is
// timed into transport.call_us; sampled calls also pin their trace ID to
// the latency bucket as an exemplar.
func CallCtx(c Caller, addr string, tc trace.Context, req any) (any, []trace.Wire, error) {
	start := time.Now()
	if cc, ok := c.(ContextCaller); ok && tc.Sampled {
		resp, spans, err := cc.CallCtx(addr, tc, req)
		us := uint64(time.Since(start).Microseconds())
		metCallUS.Observe(us)
		metCallUS.SetExemplar(us, fmt.Sprintf("%016x", tc.TraceID))
		return resp, spans, err
	}
	resp, err := c.Call(addr, req)
	metCallUS.Observe(uint64(time.Since(start).Microseconds()))
	return resp, nil, err
}

// ErrUnknownAddr is returned by the in-memory network for addresses with
// no registered handler, modeling an unreachable peer.
var ErrUnknownAddr = errors.New("transport: unknown address")

// ErrBadRequest is returned by handlers for unrecognized request types.
var ErrBadRequest = errors.New("transport: bad request")

// ErrNetwork marks transport-level delivery failures — dial errors,
// dropped or closed connections, timeouts, injected faults — as opposed
// to errors returned by the remote handler. The distinction drives retry
// policy: a network failure on an idempotent request is safe to retry,
// while a handler error is a definitive answer from a live node.
var ErrNetwork = errors.New("transport: network failure")

// ErrCallerClosed is returned for calls issued after a caller's Close.
var ErrCallerClosed = errors.New("transport: caller closed")

// netError wraps a transport-level failure so it matches ErrNetwork under
// errors.Is while preserving the cause chain.
type netError struct{ cause error }

func (e *netError) Error() string   { return e.cause.Error() }
func (e *netError) Unwrap() []error { return []error{ErrNetwork, e.cause} }

// netErrf builds an ErrNetwork-classified error. Every construction is
// one delivery failure, so the transport.errors counter lives here.
func netErrf(format string, args ...any) error {
	metErrors.Inc()
	return &netError{cause: fmt.Errorf(format, args...)}
}

// Retryable reports whether err is a transport-level delivery failure
// that a bounded retry may recover from. Handler errors (including
// RemoteError) are not retryable: the request reached a live node.
func Retryable(err error) bool {
	return errors.Is(err, ErrNetwork) || errors.Is(err, ErrUnknownAddr)
}

// RemoteError is how a handler-side failure surfaces at the caller when
// the transport cannot carry the original error value (TCP). The in-memory
// transport returns handler errors unwrapped.
type RemoteError struct {
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "transport: remote: " + e.Msg }

// WrapRemote converts an error to its wire representation.
func WrapRemote(err error) *RemoteError {
	if err == nil {
		return nil
	}
	return &RemoteError{Msg: err.Error()}
}

// BadRequest builds the standard unknown-request-type error.
func BadRequest(req any) error {
	return fmt.Errorf("%w: %T", ErrBadRequest, req)
}
