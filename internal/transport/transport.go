// Package transport provides the message transports peers communicate
// over: an in-memory network for simulation and a TCP/gob network for live
// clusters. Both expose the same Caller interface, so the chord protocol
// and the partition lookup protocol are transport-agnostic.
package transport

import (
	"errors"
	"fmt"
)

// Caller issues a request to the node at addr and returns its response.
// Requests and responses are plain values; over TCP they must be
// gob-encodable and registered with RegisterType.
type Caller interface {
	Call(addr string, req any) (any, error)
}

// Handler serves requests arriving at one node. It returns the response
// value or an error; transports carry the error back to the caller.
type Handler func(req any) (any, error)

// ErrUnknownAddr is returned by the in-memory network for addresses with
// no registered handler, modeling an unreachable peer.
var ErrUnknownAddr = errors.New("transport: unknown address")

// ErrBadRequest is returned by handlers for unrecognized request types.
var ErrBadRequest = errors.New("transport: bad request")

// RemoteError is how a handler-side failure surfaces at the caller when
// the transport cannot carry the original error value (TCP). The in-memory
// transport returns handler errors unwrapped.
type RemoteError struct {
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "transport: remote: " + e.Msg }

// WrapRemote converts an error to its wire representation.
func WrapRemote(err error) *RemoteError {
	if err == nil {
		return nil
	}
	return &RemoteError{Msg: err.Error()}
}

// BadRequest builds the standard unknown-request-type error.
func BadRequest(req any) error {
	return fmt.Errorf("%w: %T", ErrBadRequest, req)
}
