package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"p2prange/internal/chord"
)

type echoReq struct{ Msg string }
type echoResp struct{ Msg string }

func init() {
	RegisterType(echoReq{})
	RegisterType(echoResp{})
}

func echoHandler(req any) (any, error) {
	switch r := req.(type) {
	case echoReq:
		if r.Msg == "boom" {
			return nil, errors.New("handler exploded")
		}
		return echoResp{Msg: r.Msg}, nil
	default:
		return nil, BadRequest(req)
	}
}

func TestMemoryCall(t *testing.T) {
	m := NewMemory()
	m.Register("a", echoHandler)
	resp, err := m.Call("a", echoReq{Msg: "hi"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(echoResp).Msg != "hi" {
		t.Errorf("resp = %v", resp)
	}
	if m.Calls() != 1 {
		t.Errorf("Calls = %d", m.Calls())
	}
}

func TestMemoryUnknownAddr(t *testing.T) {
	m := NewMemory()
	if _, err := m.Call("ghost", echoReq{}); !errors.Is(err, ErrUnknownAddr) {
		t.Errorf("err = %v, want ErrUnknownAddr", err)
	}
}

func TestMemoryFaultInjection(t *testing.T) {
	m := NewMemory()
	m.Register("a", echoHandler)
	m.SetDown("a", true)
	if _, err := m.Call("a", echoReq{}); !errors.Is(err, ErrUnknownAddr) {
		t.Errorf("down node reachable: %v", err)
	}
	m.SetDown("a", false)
	if _, err := m.Call("a", echoReq{Msg: "x"}); err != nil {
		t.Errorf("healed node unreachable: %v", err)
	}
	m.Unregister("a")
	if _, err := m.Call("a", echoReq{}); !errors.Is(err, ErrUnknownAddr) {
		t.Error("unregistered node reachable")
	}
}

func TestMemoryHandlerError(t *testing.T) {
	m := NewMemory()
	m.Register("a", echoHandler)
	if _, err := m.Call("a", echoReq{Msg: "boom"}); err == nil || err.Error() != "handler exploded" {
		t.Errorf("err = %v", err)
	}
}

func startTCP(t *testing.T) (*TCPServer, *TCPCaller) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(ln, echoHandler)
	t.Cleanup(func() { srv.Close() })
	caller := NewTCPCaller()
	t.Cleanup(caller.Close)
	return srv, caller
}

func TestTCPRoundTrip(t *testing.T) {
	srv, caller := startTCP(t)
	resp, err := caller.Call(srv.Addr(), echoReq{Msg: "over tcp"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(echoResp).Msg != "over tcp" {
		t.Errorf("resp = %v", resp)
	}
}

func TestTCPRemoteError(t *testing.T) {
	srv, caller := startTCP(t)
	_, err := caller.Call(srv.Addr(), echoReq{Msg: "boom"})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if remote.Msg != "handler exploded" {
		t.Errorf("remote msg = %q", remote.Msg)
	}
	// The connection survives a handler error.
	if _, err := caller.Call(srv.Addr(), echoReq{Msg: "again"}); err != nil {
		t.Errorf("connection unusable after handler error: %v", err)
	}
}

func TestTCPSequentialRequestsReuseConnection(t *testing.T) {
	srv, caller := startTCP(t)
	for i := 0; i < 50; i++ {
		msg := fmt.Sprintf("m%d", i)
		resp, err := caller.Call(srv.Addr(), echoReq{Msg: msg})
		if err != nil {
			t.Fatal(err)
		}
		if resp.(echoResp).Msg != msg {
			t.Fatalf("resp %d = %v", i, resp)
		}
	}
}

func TestTCPConcurrentCallers(t *testing.T) {
	srv, caller := startTCP(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				msg := fmt.Sprintf("g%d-%d", g, i)
				resp, err := caller.Call(srv.Addr(), echoReq{Msg: msg})
				if err != nil {
					errs <- err
					return
				}
				if resp.(echoResp).Msg != msg {
					errs <- fmt.Errorf("mismatch %q", msg)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPServerClosedConnection(t *testing.T) {
	srv, caller := startTCP(t)
	addr := srv.Addr()
	if _, err := caller.Call(addr, echoReq{Msg: "warm"}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := caller.Call(addr, echoReq{Msg: "late"}); err == nil {
		t.Error("call to closed server succeeded")
	}
	// Restart on the same port is not guaranteed; dial error must surface
	// cleanly (already covered above), and the caller must recover once a
	// server is back on a fresh address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv2 := ServeTCP(ln, echoHandler)
	defer srv2.Close()
	if _, err := caller.Call(srv2.Addr(), echoReq{Msg: "recovered"}); err != nil {
		t.Errorf("fresh server unreachable: %v", err)
	}
}

func TestTCPDialFailure(t *testing.T) {
	caller := NewTCPCaller()
	caller.DialTimeout = 200 * time.Millisecond
	defer caller.Close()
	if _, err := caller.Call("127.0.0.1:1", echoReq{}); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

// chordEnv wires two chord nodes over the in-memory transport through the
// ChordClient adapter, exercising DispatchChord end to end.
func TestChordRPCAdapterMemory(t *testing.T) {
	m := NewMemory()
	client := ChordClient{Caller: m}
	a := chord.NewNode("a", client, chord.Config{})
	b := chord.NewNode("b", client, chord.Config{})
	m.Register("a", func(req any) (any, error) {
		resp, handled, err := DispatchChord(a, req)
		if !handled {
			return nil, BadRequest(req)
		}
		return resp, err
	})
	m.Register("b", func(req any) (any, error) {
		resp, handled, err := DispatchChord(b, req)
		if !handled {
			return nil, BadRequest(req)
		}
		return resp, err
	})

	// Fresh node: no predecessor sentinel crosses the adapter.
	if _, err := client.Predecessor("a"); !errors.Is(err, chord.ErrNoPredecessor) {
		t.Errorf("Predecessor err = %v, want ErrNoPredecessor", err)
	}
	if err := client.Ping("a"); err != nil {
		t.Errorf("Ping: %v", err)
	}
	// Join b to a's ring and stabilize both until converged.
	if err := b.Join("a"); err != nil {
		t.Fatalf("Join: %v", err)
	}
	chord.StabilizeAll([]*chord.Node{a, b}, 4)
	if _, err := chord.VerifyRing([]*chord.Node{a, b}); err != nil {
		t.Fatalf("two-node ring broken: %v", err)
	}
	// FindSuccessor through the adapter.
	ref, err := client.FindSuccessor("a", b.ID())
	if err != nil || ref.ID != b.ID() {
		t.Errorf("FindSuccessor = %v, %v", ref, err)
	}
}

// The same adapter must work over TCP, including the error mapping.
func TestChordRPCAdapterTCP(t *testing.T) {
	caller := NewTCPCaller()
	defer caller.Close()
	client := ChordClient{Caller: caller}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := chord.NewNode(ln.Addr().String(), client, chord.Config{})
	srv := ServeTCP(ln, func(req any) (any, error) {
		resp, handled, err := DispatchChord(n, req)
		if !handled {
			return nil, BadRequest(req)
		}
		return resp, err
	})
	defer srv.Close()

	if _, err := client.Predecessor(n.Addr()); !errors.Is(err, chord.ErrNoPredecessor) {
		t.Errorf("Predecessor over TCP = %v, want ErrNoPredecessor", err)
	}
	ref, err := client.Successor(n.Addr())
	if err != nil || ref.ID != n.ID() {
		t.Errorf("Successor over TCP = %v, %v", ref, err)
	}
	if err := client.Notify(n.Addr(), chord.Ref{ID: n.ID() + 1, Addr: "x"}); err != nil {
		t.Errorf("Notify over TCP: %v", err)
	}
}
