package wal

// A standard double-hashed bloom filter over 64-bit FNV-1a hashes, used
// twice per segment: once over bucket ids (so FindBest on an id the
// segment has never held costs zero I/O) and once over (id, key) pairs
// (so Put/Get admission checks for absent descriptors skip the probe).
// Both are built at compaction time from the exact record set, serialized
// into the segment footer, and rebuilt from a full scan when the footer
// is damaged. The byte layout is specified in docs/DURABILITY.md.
//
// Sizing is fixed at build time: bloomBitsPerKey bits per entry and
// bloomHashes probes, giving a false-positive rate under 1% — a false
// positive only costs one wasted index probe, never a wrong answer.

const (
	bloomBitsPerKey = 10
	bloomHashes     = 7
	// bloomMaxBytes clamps a deserialized filter, like MaxRecord clamps a
	// record: a hostile or corrupt length can not force a huge allocation.
	bloomMaxBytes = 64 << 20
)

type bloom struct {
	m    uint64 // number of bits
	k    uint32 // probes per entry
	bits []byte
}

// newBloom sizes a filter for n entries.
func newBloom(n int) *bloom {
	m := uint64(n) * bloomBitsPerKey
	if m < 64 {
		m = 64
	}
	return &bloom{m: m, k: bloomHashes, bits: make([]byte, (m+7)/8)}
}

// The two probe sequences are derived from one 64-bit hash via the
// Kirsch–Mitzenmacher construction: bit_i = (h1 + i*h2) mod m, with h2
// forced odd so the sequence cycles through the whole table.

func (b *bloom) add(h uint64) {
	h1, h2 := h, (h>>33)|1
	for i := uint32(0); i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		b.bits[pos>>3] |= 1 << (pos & 7)
	}
}

func (b *bloom) has(h uint64) bool {
	if b == nil {
		return true // no filter = cannot exclude
	}
	h1, h2 := h, (h>>33)|1
	for i := uint32(0); i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		if b.bits[pos>>3]&(1<<(pos&7)) == 0 {
			return false
		}
	}
	return true
}

// FNV-1a, inlined so hashing a lookup key allocates nothing.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// hashID hashes a bucket id as 4 big-endian bytes.
func hashID(id uint32) uint64 {
	h := uint64(fnvOffset64)
	h = fnvByte(h, byte(id>>24))
	h = fnvByte(h, byte(id>>16))
	h = fnvByte(h, byte(id>>8))
	return fnvByte(h, byte(id))
}

// hashIDKey hashes a descriptor identity: the 4 big-endian id bytes
// followed by the key string ("rel.attr[lo,hi]", store.Partition.Key).
func hashIDKey(id uint32, key string) uint64 {
	h := hashID(id)
	for i := 0; i < len(key); i++ {
		h = fnvByte(h, key[i])
	}
	return h
}
