package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"p2prange/internal/store"
	"p2prange/internal/transport"
)

// Crash-simulation suite: every test damages on-disk state the way a
// kill -9, a torn write, or media corruption would, then proves that
// recovery (a) never panics, (b) never loses an acknowledged write, and
// (c) restores an exact prefix of the journaled history.

// seedWAL writes n committed puts (bucket i -> testPart(i)) and crashes
// without checkpointing, so everything lives in one WAL file. Returns
// the WAL file's path.
func seedWAL(t *testing.T, dir string, n int) string {
	t.Helper()
	st, lg, _ := openStore(t, dir, Options{})
	for i := 0; i < n; i++ {
		st.Put(uint32(i), testPart(i))
		if err := lg.Commit(); err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
	}
	lg.Crash()
	logs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(logs) != 1 {
		t.Fatalf("want exactly one WAL file, got %v (%v)", logs, err)
	}
	return logs[0]
}

// prefixLen returns the largest k such that the store holds exactly
// descriptors 0..k-1 from seedWAL's sequence, or -1 if the content is
// not a prefix.
func prefixLen(st *store.Store, n int) int {
	k := 0
	for ; k < n; k++ {
		if _, ok := st.Get(uint32(k), testPart(k).Key()); !ok {
			break
		}
	}
	if st.Len() != k {
		return -1
	}
	for j := k; j < n; j++ {
		if _, ok := st.Get(uint32(j), testPart(j).Key()); ok {
			return -1
		}
	}
	return k
}

// recordOffsets parses a seeded WAL file and returns the byte offset of
// each record boundary (relative to file start), ending with file size.
func recordOffsets(t *testing.T, path string) []int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := parseHeader(data, magicWAL, 1)
	if err != nil {
		t.Fatalf("seeded file has bad header: %v", err)
	}
	hdr := len(data) - len(body)
	offs := []int{hdr}
	off := hdr
	for off < len(data) {
		c := transport.NewCursor(data[off:])
		length := c.Uvarint()
		pfx := len(data) - off - c.Len()
		off += pfx + int(length)
		offs = append(offs, off)
	}
	return offs
}

func TestRecoverTornTailEveryOffset(t *testing.T) {
	const n = 12
	seedDir := t.TempDir()
	path := seedWAL(t, seedDir, n)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offs := recordOffsets(t, path)

	for cut := offs[0]; cut < len(pristine); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(path)), pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, lg, rec := openStore(t, dir, Options{})
		// Complete records before the cut must all be there; nothing else.
		want := 0
		for _, o := range offs[1:] {
			if o <= cut {
				want++
			}
		}
		if got := prefixLen(st, n); got != want {
			t.Fatalf("cut at %d: recovered prefix %d, want %d (rec %+v)", cut, got, want, rec)
		}
		// A cut exactly on a record boundary looks like a clean end of
		// file; only mid-record cuts must be flagged as torn.
		atBoundary := false
		for _, o := range offs {
			if o == cut {
				atBoundary = true
			}
		}
		if !atBoundary && !rec.TornTail {
			t.Fatalf("cut at %d is mid-record but TornTail not reported: %+v", cut, rec)
		}
		// The log must stay writable after a torn recovery.
		st.Put(9999, testPart(9999))
		if err := lg.Commit(); err != nil {
			t.Fatalf("cut at %d: post-recovery commit: %v", cut, err)
		}
		lg.Crash()

		// And the truncated tail must not resurface on the next boot.
		st2, lg2, rec2 := openStore(t, dir, Options{})
		if _, ok := st2.Get(9999, testPart(9999).Key()); !ok {
			t.Fatalf("cut at %d: post-recovery write lost on second boot", cut)
		}
		st2.Delete(9999, testPart(9999).Key())
		if got := prefixLen(st2, n); got != want {
			t.Fatalf("cut at %d: second boot prefix %d, want %d (rec %+v)", cut, got, want, rec2)
		}
		if rec2.TornTail {
			t.Fatalf("cut at %d: tear reported again after truncation: %+v", cut, rec2)
		}
		lg2.Crash()
	}
}

func TestRecoverBitFlipNeverPanics(t *testing.T) {
	const n = 12
	seedDir := t.TempDir()
	path := seedWAL(t, seedDir, n)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(pristine); pos++ {
		dir := t.TempDir()
		mut := append([]byte(nil), pristine...)
		mut[pos] ^= 0x41
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(path)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		st, lg, _ := openStore(t, dir, Options{})
		// CRC32-C catches any single-byte flip, so recovery stops at (or
		// before) the damaged record: the store must hold an exact prefix.
		if got := prefixLen(st, n); got < 0 {
			t.Fatalf("flip at %d: store content is not a prefix", pos)
		}
		lg.Crash()
	}
}

func TestRecoverPartialSegmentIgnored(t *testing.T) {
	dir := t.TempDir()
	st, lg, _ := openStore(t, dir, Options{})
	for i := 0; i < 10; i++ {
		st.Put(uint32(i), testPart(i))
	}
	lg.Commit()
	if err := lg.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	lg.Crash()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("want one segment, got %v", segs)
	}
	// Tear the segment mid-seal — a partial write a rename should have
	// prevented, i.e. media corruption. The cut must land inside the seal
	// record, not merely clip the footer (which would only cost an index
	// rebuild): locate the seal via the reader's index first.
	r, err := OpenSegmentReader(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	sealOff := r.idx.dataEnd
	r.Close()
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], data[:sealOff+2], 0o644); err != nil {
		t.Fatal(err)
	}
	st2, lg2, rec := openStore(t, dir, Options{})
	defer lg2.Close()
	if rec.BadSegments != 1 {
		t.Errorf("BadSegments = %d, want 1 (%+v)", rec.BadSegments, rec)
	}
	// The WALs were retired when the segment sealed, so the unsealed
	// segment's contents are genuinely gone — but recovery must come up
	// empty and healthy, not panic or half-load.
	if st2.Len() != 0 {
		t.Errorf("partial segment half-loaded: %d descriptors", st2.Len())
	}
	st2.Put(1, testPart(1))
	if err := lg2.Commit(); err != nil {
		t.Errorf("log unusable after skipping bad segment: %v", err)
	}
}

func TestRecoverCrashMidCompaction(t *testing.T) {
	dir := t.TempDir()
	st, lg, _ := openStore(t, dir, Options{})
	for i := 0; i < 10; i++ {
		st.Put(uint32(i), testPart(i))
	}
	lg.Commit()
	lg.Crash()
	// A compaction killed before its rename leaves a .tmp and the intact
	// WAL inputs. Recovery must discard the .tmp and replay the WALs.
	tmp := filepath.Join(dir, "seg-00000000000000ff.seg.tmp")
	if err := os.WriteFile(tmp, []byte("partial segment garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, lg2, rec := openStore(t, dir, Options{})
	defer lg2.Close()
	if got := prefixLen(st2, 10); got != 10 {
		t.Errorf("recovered prefix %d of 10 with stale .tmp present (rec %+v)", got, rec)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("stale .tmp not cleaned up")
	}
}

// TestRecoverAckedWritesNeverLost is the contract test: after any crash
// point, recovery restores EXACTLY the state whose mutations were
// acknowledged by Commit — nothing acknowledged missing, nothing
// unacknowledged surviving a dropped buffer.
func TestRecoverAckedWritesNeverLost(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)))
			dir := t.TempDir()
			var acked map[string]store.Partition // key -> descriptor at last Commit
			live := make(map[string]store.Partition)
			bucketOf := make(map[string]uint32)

			st, lg, _ := openStore(t, dir, Options{CompactEvery: 17})
			ops := 40 + rng.Intn(80)
			for i := 0; i < ops; i++ {
				switch {
				case rng.Intn(4) == 0 && len(live) > 0:
					for key, p := range live { // delete one (map order is random enough)
						st.Delete(bucketOf[key], p.Key())
						delete(live, key)
						break
					}
				default:
					p := testPart(rng.Intn(200))
					p.Version = uint64(rng.Intn(5))
					id := uint32(rng.Intn(20))
					k := fmt.Sprintf("%08x/%s", id, p.Key())
					st.Put(id, p)
					if cur, ok := live[k]; !ok || p.Version > cur.Version {
						live[k] = p
					}
					bucketOf[k] = id
				}
				if rng.Intn(3) == 0 {
					if err := lg.Commit(); err != nil {
						t.Fatalf("Commit: %v", err)
					}
					acked = make(map[string]store.Partition, len(live))
					for k, v := range live {
						acked[k] = v
					}
				}
			}
			lg.Crash() // anything after the last Commit is allowed to vanish

			st2, lg2, rec := openStore(t, dir, Options{CompactEvery: 17})
			defer lg2.Close()
			got := make(map[string]store.Partition)
			for _, id := range st2.IDs() {
				for _, p := range st2.Bucket(id) {
					got[fmt.Sprintf("%08x/%s", id, p.Key())] = p
				}
			}
			if acked == nil {
				acked = map[string]store.Partition{}
			}
			if !reflect.DeepEqual(got, acked) {
				t.Fatalf("recovered state != acked state (rec %+v)\n got: %d entries\nwant: %d entries",
					rec, len(got), len(acked))
			}
		})
	}
}

// TestRecoverReplayIsIdempotentAcrossBoots reboots repeatedly without
// writing: retained WAL files replay again each time and must converge
// to the same state.
func TestRecoverReplayIsIdempotentAcrossBoots(t *testing.T) {
	dir := t.TempDir()
	st, lg, _ := openStore(t, dir, Options{})
	for i := 0; i < 25; i++ {
		st.Put(uint32(i%5), testPart(i))
	}
	st.ExtractArc(1, 3)
	lg.Commit()
	lg.Crash()
	want := -1
	for boot := 0; boot < 4; boot++ {
		st2, lg2, _ := openStore(t, dir, Options{})
		if want < 0 {
			want = st2.Len()
		} else if st2.Len() != want {
			t.Fatalf("boot %d recovered %d descriptors, first boot had %d", boot, st2.Len(), want)
		}
		lg2.Crash()
	}
	if want == 0 {
		t.Fatal("nothing recovered at all")
	}
}

// TestRecoverManyFilesAndSegments exercises the full lifecycle: several
// compactions, several boots, interleaved writes.
func TestRecoverManyFilesAndSegments(t *testing.T) {
	dir := t.TempDir()
	total := 0
	for boot := 0; boot < 5; boot++ {
		st, lg, rec := openStore(t, dir, Options{CompactEvery: 8})
		if st.Len() != total {
			t.Fatalf("boot %d: recovered %d, want %d (rec %+v, files %v)",
				boot, st.Len(), total, rec, files(t, dir))
		}
		for i := 0; i < 13; i++ {
			st.Put(uint32(boot), testPart(boot*100+i))
			if err := lg.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		total += 13
		if boot%2 == 0 {
			lg.Crash()
		} else if err := lg.Close(); err != nil {
			t.Fatalf("boot %d close: %v", boot, err)
		}
	}
}

// TestTornHeaderDropped covers a crash during WAL file creation: a file
// whose header never finished must be dropped without poisoning boot.
func TestTornHeaderDropped(t *testing.T) {
	dir := t.TempDir()
	seedWAL(t, dir, 5)
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000005.log"), []byte("p2r"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, lg, rec := openStore(t, dir, Options{})
	defer lg.Close()
	if got := prefixLen(st, 5); got != 5 {
		t.Errorf("prefix %d of 5 with torn-header file present (rec %+v)", got, rec)
	}
	if !rec.TornTail {
		t.Errorf("torn header not reported: %+v", rec)
	}
	for _, name := range files(t, dir) {
		if strings.Contains(name, "0000000000000005") {
			t.Errorf("torn-header file still present: %v", files(t, dir))
		}
	}
}
