package wal

import (
	"errors"
	"fmt"
	"os"
	"sort"

	"p2prange/internal/metrics"
	"p2prange/internal/transport"
)

// Log shipping support: the WAL doubles as a replication stream. A
// follower holds a Cursor — (WAL file sequence, byte offset) — naming a
// record boundary in the owner's log, and ReadEntries hands back the
// framed record bytes from there up to the durable watermark, verbatim.
// Because the bytes on the wire are the bytes on disk, a follower that
// applies them through the same replay path recovery uses converges to
// exactly the state a local recovery of the owner's directory would
// produce.
//
// Compaction is the enemy of a lagging cursor: folding deletes the WAL
// files the cursor still needs. Pin reserves them — compaction retains
// folded files at or above the lowest pinned sequence, up to the
// Options.ShipRetain byte budget. A pin evicted for budget (or a cursor
// pre-dating retention entirely) gets ErrCursorGone, and the follower
// reseeds from the sealed segment instead (ReadSegmentChunk), tailing
// the WAL from the seal point afterwards.

var (
	metRetainedBytes = metrics.Default.Gauge("wal.retained_bytes")
	metRetainDrops   = metrics.Default.Counter("wal.retain_drops")
	metShipReads     = metrics.Default.Counter("wal.ship_reads")
	metShipBytes     = metrics.Default.Counter("wal.ship_bytes")
)

// DefaultShipRetain is the folded-WAL retention budget when
// Options.ShipRetain is zero: up to this many bytes of already-folded
// WAL files are kept on disk for pinned follower cursors.
const DefaultShipRetain = 64 << 20

// Cursor names a record boundary in the WAL stream: the file sequence
// number and the byte offset within that file. The zero Cursor means
// "from the beginning of whatever is retained". Off == 0 is normalized
// to the first record (just past the file header).
type Cursor struct {
	Seq uint64 `json:"seq"`
	Off int64  `json:"off"`
}

// Less orders cursors by stream position.
func (c Cursor) Less(o Cursor) bool {
	return c.Seq < o.Seq || (c.Seq == o.Seq && c.Off < o.Off)
}

// IsZero reports the zero cursor (subscribe-from-anywhere).
func (c Cursor) IsZero() bool { return c.Seq == 0 && c.Off == 0 }

func (c Cursor) String() string { return fmt.Sprintf("%d:%d", c.Seq, c.Off) }

// ErrCursorGone reports a cursor whose WAL file is no longer retained
// (folded into a segment and deleted, or evicted for retention budget)
// or that does not name a valid record boundary. The only way forward
// is a snapshot reseed from the sealed segment.
var ErrCursorGone = errors.New("wal: cursor out of retained range")

// ErrSegmentGone reports a snapshot read against a segment that
// compaction has since replaced; the follower restarts the snapshot
// against the current one.
var ErrSegmentGone = errors.New("wal: segment replaced")

// errWALFileMissing distinguishes "no file at this sequence" from a
// definitive ErrCursorGone inside ReadEntries, which classifies it by
// whether the fold point has passed the sequence.
var errWALFileMissing = errors.New("wal: file missing")

// headerLen is the byte length of a WAL/segment file header for seq:
// the 8-byte magic plus the uvarint-encoded sequence number.
func headerLen(seq uint64) int64 {
	return int64(len(magicWAL) + len(transport.AppendUvarint(nil, seq)))
}

// End returns the durable end of the log: the position just past the
// last committed record. Records appended but not yet committed are not
// included — a follower can never observe bytes the owner could still
// lose in a crash.
func (l *Log) End() Cursor {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Cursor{Seq: l.seq, Off: l.durableOff}
}

// TailStart returns the cursor a follower without servable history
// should tail from when no segment exists to seed it: the start of the
// lowest WAL file on disk at or above c. ok is false only if the
// directory cannot be scanned.
func (l *Log) TailStart(c Cursor) (Cursor, bool) {
	walSeqs, _, err := scanDir(l.dir)
	if err != nil || len(walSeqs) == 0 {
		return Cursor{}, false
	}
	for _, seq := range walSeqs {
		if seq >= c.Seq {
			return Cursor{Seq: seq}, true
		}
	}
	return Cursor{Seq: walSeqs[len(walSeqs)-1]}, true
}

// ReadEntries returns committed framed record bytes starting at c, up
// to roughly maxBytes, and the cursor just past them. The returned
// slice always ends on a record boundary and every record in it has
// passed its CRC. An empty slice with err == nil means the follower is
// caught up (next == durable end). ErrCursorGone means the history at c
// is no longer on disk — reseed from the segment.
func (l *Log) ReadEntries(c Cursor, maxBytes int) (data []byte, next Cursor, err error) {
	if maxBytes < MaxRecord+16 {
		maxBytes = MaxRecord + 16
	}
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return nil, c, ErrClosed
		}
		if l.err != nil {
			err := l.err
			l.mu.Unlock()
			return nil, c, err
		}
		active, limit := l.seq, l.durableOff
		l.mu.Unlock()

		if c.Seq == 0 {
			c.Seq = 1
		}
		if c.Seq > active {
			// Ahead of the owner: the owner lost state (restored from an
			// older image). The follower must reseed.
			return nil, c, ErrCursorGone
		}
		if c.Seq < active {
			limit = -1 // rotated files are immutable; read to their size
		}
		chunk, n, _, rerr := readWALRange(walPath(l.dir, c.Seq), c.Seq, c.Off, limit, maxBytes)
		if errors.Is(rerr, errWALFileMissing) {
			l.mu.Lock()
			segSeq := l.segSeq
			l.mu.Unlock()
			if c.Seq <= segSeq || c.Off != 0 {
				// Folded away (and past retention), or the follower was
				// mid-file in something that vanished. Reseed.
				return nil, c, ErrCursorGone
			}
			// A sequence above the segment with no file was never written
			// (recovery dropped trailing files after a tear, leaving the
			// range up to the fresh active file hollow). No records lived
			// there — skip forward.
			c = Cursor{Seq: c.Seq + 1}
			continue
		}
		if rerr != nil {
			return nil, c, rerr
		}
		if n > 0 {
			metShipReads.Inc()
			metShipBytes.Add(uint64(n))
			start := c.Off
			if start == 0 {
				start = headerLen(c.Seq)
			}
			return chunk[:n], Cursor{Seq: c.Seq, Off: start + int64(n)}, nil
		}
		if c.Seq == active {
			// Caught up. Normalize the offset so the caller's next poll
			// starts at a real boundary.
			start := c.Off
			if start == 0 {
				start = headerLen(c.Seq)
			}
			return nil, Cursor{Seq: c.Seq, Off: start}, nil
		}
		// End of a rotated file: hand off to the next one.
		c = Cursor{Seq: c.Seq + 1}
	}
}

// readWALRange reads framed records from one WAL file starting at off
// (0 = first record), stopping at limit (-1 = file size) or ~maxBytes,
// whichever comes first, and CRC-walks them. It returns the raw bytes,
// the length of the valid record prefix, and the record count. A
// missing file or a cursor that does not land on a valid record is
// ErrCursorGone.
func readWALRange(path string, seq uint64, off, limit int64, maxBytes int) ([]byte, int, int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, 0, errWALFileMissing
		}
		return nil, 0, 0, fmt.Errorf("wal: ship read: %w", err)
	}
	defer f.Close()
	if off == 0 {
		off = headerLen(seq)
	}
	if limit < 0 {
		fi, err := f.Stat()
		if err != nil {
			return nil, 0, 0, fmt.Errorf("wal: ship read: %w", err)
		}
		limit = fi.Size()
	}
	if off > limit {
		// Past the durable end of this file: the follower believed bytes
		// the owner no longer has (or the cursor is garbage). Reseed.
		return nil, 0, 0, ErrCursorGone
	}
	want := limit - off
	truncated := false
	if want > int64(maxBytes) {
		want = int64(maxBytes)
		truncated = true
	}
	if want == 0 {
		return nil, 0, 0, nil
	}
	buf := make([]byte, want)
	m, err := f.ReadAt(buf, off)
	if err != nil && (m < len(buf)) {
		return nil, 0, 0, fmt.Errorf("wal: ship read: %w", err)
	}
	recs := 0
	n, werr := walkRecords(buf, func(Record) error { recs++; return nil })
	if n == 0 && werr != nil {
		// Not a record boundary, or the record at the cursor is damaged.
		// Either way this cursor cannot be served.
		return nil, 0, 0, ErrCursorGone
	}
	if n < len(buf) && werr != nil && !truncated {
		// A tear inside the committed region of the file. The valid prefix
		// is still good — ship it; the next call lands on the tear and
		// reports ErrCursorGone, forcing a reseed past the damage.
		return buf, n, recs, nil
	}
	return buf, n, recs, nil
}

// Servable reports whether ReadEntries can serve cursor c without a
// reseed: the position is at or below the durable end and its WAL file
// is either still on disk or provably hollow (above the fold point).
// Offset misalignment within a live file is caught later, by the CRC
// walk.
func (l *Log) Servable(c Cursor) bool {
	l.mu.Lock()
	active, segSeq, durable := l.seq, l.segSeq, l.durableOff
	l.mu.Unlock()
	if c.IsZero() || c.Seq > active {
		return false
	}
	if c.Seq == active && c.Off > durable {
		return false
	}
	if c.Seq > segSeq {
		return true
	}
	fi, err := os.Stat(walPath(l.dir, c.Seq))
	return err == nil && c.Off <= fi.Size()
}

// Lag returns the approximate committed bytes between c and the
// durable end — the follower's catch-up debt. Directory-stat based;
// call at status cadence.
func (l *Log) Lag(c Cursor) int64 {
	end := l.End()
	if !c.Less(end) {
		return 0
	}
	if c.Seq == end.Seq {
		off := c.Off
		if off == 0 {
			off = headerLen(c.Seq)
		}
		return end.Off - off
	}
	var lag int64
	for seq := c.Seq; seq < end.Seq; seq++ {
		fi, err := os.Stat(walPath(l.dir, seq))
		if err != nil {
			continue
		}
		size := fi.Size()
		if seq == c.Seq && c.Off > 0 {
			size -= c.Off
		} else {
			size -= headerLen(seq)
		}
		if size > 0 {
			lag += size
		}
	}
	return lag + end.Off - headerLen(end.Seq)
}

// SegmentInfo reports the current sealed segment, if any: its sequence
// number and byte size. The seal point — where a snapshot-seeded
// follower starts tailing — is Cursor{Seq: seq + 1}.
func (l *Log) SegmentInfo() (seq uint64, size int64, ok bool) {
	l.mu.Lock()
	seq = l.segSeq
	l.mu.Unlock()
	if seq == 0 {
		return 0, 0, false
	}
	fi, err := os.Stat(segPath(l.dir, seq))
	if err != nil {
		return 0, 0, false
	}
	return seq, fi.Size(), true
}

// ReadSegmentChunk reads maxBytes (or less at EOF) of sealed segment
// seq starting at byte off, for snapshot seeding and backup. The chunk
// is raw file bytes — reassembling all chunks reproduces the segment
// file exactly, CRC-verifiable as a whole via ParseSegment.
// ErrSegmentGone means compaction replaced the segment; restart against
// SegmentInfo's current one.
func (l *Log) ReadSegmentChunk(seq uint64, off int64, maxBytes int) (data []byte, total int64, err error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	f, err := os.Open(segPath(l.dir, seq))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, ErrSegmentGone
		}
		return nil, 0, fmt.Errorf("wal: segment chunk: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("wal: segment chunk: %w", err)
	}
	total = fi.Size()
	if off < 0 || off > total {
		return nil, total, fmt.Errorf("wal: segment chunk: offset %d outside [0,%d]", off, total)
	}
	want := total - off
	if want > int64(maxBytes) {
		want = int64(maxBytes)
	}
	buf := make([]byte, want)
	if _, err := f.ReadAt(buf, off); err != nil && int64(len(buf)) == want {
		return nil, total, fmt.Errorf("wal: segment chunk: %w", err)
	}
	return buf, total, nil
}

// Pin reserves WAL history for a follower: compaction keeps folded WAL
// files with sequence >= c.Seq on disk (within the ShipRetain budget)
// instead of deleting them, so the follower can keep tailing across a
// fold — the seal-point handoff. Re-pinning the same follower advances
// (or rewinds) its reservation. Pins are in-memory only; they do not
// survive an owner restart.
func (l *Log) Pin(follower string, c Cursor) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if l.pins == nil {
		l.pins = make(map[string]Cursor)
	}
	l.pins[follower] = c
}

// Unpin releases a follower's retention reservation.
func (l *Log) Unpin(follower string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.pins, follower)
}

// Pins returns a copy of the live follower reservations.
func (l *Log) Pins() map[string]Cursor {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]Cursor, len(l.pins))
	for k, v := range l.pins {
		out[k] = v
	}
	return out
}

// retentionLocked decides, at fold time, which folded WAL files to keep
// for pinned cursors and which pins the ShipRetain budget forces off
// the log (onto the snapshot path). candidates maps the just-folded
// sequences to their file sizes; l.retained holds survivors of earlier
// folds. Caller holds l.mu. It returns the sequences to delete and the
// pins that were dropped.
func (l *Log) retentionLocked(candidates map[uint64]int64) (remove []uint64, dropped map[string]Cursor) {
	if l.retained == nil {
		l.retained = make(map[uint64]int64)
	}
	for seq, size := range candidates {
		l.retained[seq] = size
	}
	// Floor: the lowest pinned sequence. Everything below it serves no
	// follower and goes.
	floor := uint64(1<<63 - 1)
	for _, c := range l.pins {
		seq := c.Seq
		if seq == 0 {
			seq = 1
		}
		if seq < floor {
			floor = seq
		}
	}
	seqs := make([]uint64, 0, len(l.retained))
	for seq := range l.retained {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var total int64
	for _, seq := range seqs {
		if seq < floor {
			remove = append(remove, seq)
			delete(l.retained, seq)
			continue
		}
		total += l.retained[seq]
	}
	// Budget: evict oldest-first until under. Each eviction strands every
	// pin at or below the evicted sequence — those followers must reseed.
	budget := l.retainBytes
	for _, seq := range seqs {
		if total <= budget {
			break
		}
		size, ok := l.retained[seq]
		if !ok {
			continue
		}
		remove = append(remove, seq)
		delete(l.retained, seq)
		total -= size
		for follower, c := range l.pins {
			if c.Seq <= seq {
				if dropped == nil {
					dropped = make(map[string]Cursor)
				}
				dropped[follower] = c
				delete(l.pins, follower)
			}
		}
	}
	metRetainedBytes.Set(total)
	return remove, dropped
}

// DiskUsage reports the bytes the log occupies on disk and the oldest
// sequence numbers still present — the numbers behind retention
// pressure. It scans the directory, so call it at status-poll cadence,
// not per-request.
type DiskUsage struct {
	WALBytes      int64  `json:"wal_bytes"`
	SegmentBytes  int64  `json:"segment_bytes"`
	RetainedBytes int64  `json:"retained_bytes"` // folded WAL kept for pins (subset of WALBytes)
	OldestWALSeq  uint64 `json:"oldest_wal_seq"`
	SegmentSeq    uint64 `json:"segment_seq"`
	Pins          int    `json:"pins"`
}

// Usage computes the log's current DiskUsage.
func (l *Log) Usage() DiskUsage {
	var u DiskUsage
	l.mu.Lock()
	dir := l.dir
	for _, size := range l.retained {
		u.RetainedBytes += size
	}
	u.Pins = len(l.pins)
	u.SegmentSeq = l.segSeq
	l.mu.Unlock()
	walSeqs, segSeqs, err := scanDir(dir)
	if err != nil {
		return u
	}
	for _, seq := range walSeqs {
		if fi, err := os.Stat(walPath(dir, seq)); err == nil {
			u.WALBytes += fi.Size()
		}
		if u.OldestWALSeq == 0 || seq < u.OldestWALSeq {
			u.OldestWALSeq = seq
		}
	}
	for _, seq := range segSeqs {
		if fi, err := os.Stat(segPath(dir, seq)); err == nil {
			u.SegmentBytes += fi.Size()
		}
	}
	return u
}

// WalkBuffer CRC-walks framed records in buf, calling fn for each valid
// one, and returns the byte length of the valid prefix. It is
// walkRecords exported for the shipping path (appliers) and walctl: the
// bytes ReadEntries ships are applied with exactly the parser recovery
// replays with.
func WalkBuffer(buf []byte, fn func(Record) error) (int, error) {
	return walkRecords(buf, fn)
}

// Walker is WalkBuffer with reusable parse state: the cursor and its
// string interner persist across calls, so walking a steady stream of
// shipped batches allocates nothing after warm-up. Not safe for
// concurrent use — give each goroutine its own.
type Walker struct {
	c *transport.Cursor
}

// NewWalker builds a reusable record walker.
func NewWalker() *Walker { return &Walker{c: transport.NewCursor(nil)} }

// Walk is WalkBuffer over the walker's cursor.
func (w *Walker) Walk(buf []byte, fn func(Record) error) (int, error) {
	return walkRecordsWith(w.c, buf, fn)
}
