// Package wal gives a peer's partition store a disk: an append-only,
// checksummed write-ahead log plus immutable segment files, so a peer
// that crashes or restarts rejoins the ring with the descriptors it
// held instead of an empty store. The paper assumes bucket contents die
// with their peer and rebuilds through re-publication; durability turns
// churn from data loss into brief unavailability, leaving anti-entropy
// (internal/replica) only the writes that arrived while the peer was
// down.
//
// The write path is write-through with a deferred barrier. A Log
// implements store.Journal: the store calls Put/Evict/DropArc under its
// own write lock, so the WAL records mutations in exactly apply order,
// and those calls only buffer in memory. Commit is the durability
// barrier — it writes and fsyncs everything buffered, and concurrent
// committers coalesce behind one fsync (group commit, the same
// first-waiter-becomes-flusher idiom as the transport's frame writer).
// Peers call Commit only on paths that acknowledge writes to others
// (StoreReq, handoff, arc transfer), which keeps the lookup hot path
// free of disk IO while guaranteeing that an acknowledged write is on
// disk before the acknowledgment leaves.
//
// On disk, a data directory holds numbered wal-<seq>.log files and at
// most one live sealed seg-<seq>.seg segment. Records are uvarint
// length-prefixed and CRC32-C checksummed, built from the same codec
// primitives as the wire protocol (internal/transport) with the same
// hostile-input clamps. Compaction folds the segment plus completed WAL
// files into a fresh sealed segment — pure file-level work, no store
// access — and retires its inputs only after the replacement is
// durable. Recovery (Open) loads the newest fully-valid segment,
// replays WAL files above it in order, truncates a torn tail at the
// last valid record, and always starts a fresh WAL file; replaying a
// prefix twice is harmless because restore goes through store.Put's
// version-monotone admission rule.
//
// docs/DURABILITY.md specifies the on-disk format byte by byte and
// includes the operator runbook for data directories, backups, and
// post-crash triage.
package wal
