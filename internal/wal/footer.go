package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"p2prange/internal/store"
	"p2prange/internal/transport"
)

// The segment footer: a sparse index plus bloom filters appended AFTER
// the seal record, so point reads and arc scans can seek instead of
// walking the whole file. The footer is an accelerator, never an
// authority — the seal record remains the segment's commit point, and a
// footer that fails any check below is discarded and rebuilt from a full
// record scan (segreader.go). Damaging the footer can therefore slow a
// boot down but can never lose data or change an answer.
//
// Layout (byte-level spec in docs/DURABILITY.md):
//
//	footer   := ver count dataEnd index keyBloom idBloom crc
//	ver      byte      footer format version (1)
//	count    uvarint   put records in the segment (must match the seal)
//	dataEnd  uvarint   absolute offset of the seal record's length prefix
//	index    uvarint M, then M entries of (idDelta, offDelta) — the
//	          first entry absolute, the rest deltas from the previous
//	          (record offsets are strictly ascending; ids non-decreasing)
//	keyBloom  m uvarint, k uvarint, nbytes uvarint, nbytes filter bytes
//	idBloom   same layout
//	crc      4 bytes   little-endian CRC32-C over every prior footer byte
//
// and a fixed-size trailer at EOF locating it:
//
//	footerOff  8 bytes  little-endian absolute offset of the footer
//	footerLen  4 bytes  little-endian footer length (crc included)
//	magic      4 bytes  "pSIX"
const (
	segFooterVersion = 1
	segTrailerLen    = 16
	// segIndexEvery is the sparse-index stride: one (id, offset) entry
	// per this many put records (plus always the first record).
	segIndexEvery = 64
)

var magicIdx = []byte("pSIX")

// indexEntry locates the framed put record at off (absolute file
// offset of its length prefix) holding bucket id.
type indexEntry struct {
	id  store.ID
	off int64
}

// segIndex is a parsed (or rebuilt) footer: everything the read path
// needs to serve lookups without scanning the whole segment.
type segIndex struct {
	count   int   // put records in the segment
	dataEnd int64 // absolute offset of the seal record
	entries []indexEntry
	keys    *bloom // over (id, key) identities
	ids     *bloom // over bucket ids
}

// seek returns the largest indexed offset whose id is <= want — the
// position a walk for bucket `want` starts from. Returns start when the
// index is empty or every entry is above want.
func (x *segIndex) seek(want store.ID, start int64) int64 {
	lo, hi := 0, len(x.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if x.entries[mid].id <= want {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return start
	}
	return x.entries[lo-1].off
}

// appendFooter serializes x (footer body + crc + trailer) to b. The
// caller appends this directly after the seal record; footerOff is
// len(b) at call time.
func appendFooter(b []byte, x *segIndex) []byte {
	footerOff := uint64(len(b))
	b = append(b, segFooterVersion)
	b = transport.AppendUvarint(b, uint64(x.count))
	b = transport.AppendUvarint(b, uint64(x.dataEnd))
	b = transport.AppendUvarint(b, uint64(len(x.entries)))
	var prev indexEntry
	for i, e := range x.entries {
		if i == 0 {
			b = transport.AppendUvarint(b, uint64(e.id))
			b = transport.AppendUvarint(b, uint64(e.off))
		} else {
			b = transport.AppendUvarint(b, uint64(e.id-prev.id))
			b = transport.AppendUvarint(b, uint64(e.off-prev.off))
		}
		prev = e
	}
	b = appendBloom(b, x.keys)
	b = appendBloom(b, x.ids)
	sum := crc32.Checksum(b[footerOff:], crcTable)
	b = append(b, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))

	var tr [segTrailerLen]byte
	binary.LittleEndian.PutUint64(tr[0:8], footerOff)
	binary.LittleEndian.PutUint32(tr[8:12], uint32(uint64(len(b))-footerOff))
	copy(tr[12:16], magicIdx)
	return append(b, tr[:]...)
}

func appendBloom(b []byte, f *bloom) []byte {
	b = transport.AppendUvarint(b, f.m)
	b = transport.AppendUvarint(b, uint64(f.k))
	b = transport.AppendUvarint(b, uint64(len(f.bits)))
	return append(b, f.bits...)
}

// parseFooter decodes and validates a footer region read from
// [footerOff, footerOff+len(data)) of a segment file whose records start
// at recStart. Any failure returns ErrCorrupt — the caller falls back to
// a full-scan rebuild.
func parseFooter(data []byte, recStart, footerOff int64) (*segIndex, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("%w: footer too short", ErrCorrupt)
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	sum := uint32(crcBytes[0]) | uint32(crcBytes[1])<<8 | uint32(crcBytes[2])<<16 | uint32(crcBytes[3])<<24
	if crc32.Checksum(body, crcTable) != sum {
		return nil, fmt.Errorf("%w: footer checksum mismatch", ErrCorrupt)
	}
	if body[0] != segFooterVersion {
		return nil, fmt.Errorf("%w: footer version %d", ErrCorrupt, body[0])
	}
	c := transport.NewCursor(body[1:])
	x := &segIndex{}
	x.count = int(c.Uvarint())
	x.dataEnd = int64(c.Uvarint())
	n := c.Uvarint()
	// dataEnd == recStart is legal: an empty segment (a checkpoint of an
	// empty store, e.g. right after a graceful-leave handoff) seals with
	// zero put records, so the seal record is the first byte of the
	// record region.
	if c.Err != nil || x.count < 0 || x.dataEnd < recStart || x.dataEnd > footerOff {
		return nil, fmt.Errorf("%w: footer header", ErrCorrupt)
	}
	if n > uint64(x.count) || n > uint64(c.Len()) {
		return nil, fmt.Errorf("%w: footer index size %d", ErrCorrupt, n)
	}
	x.entries = make([]indexEntry, 0, n)
	var prev indexEntry
	for i := uint64(0); i < n; i++ {
		id, off := c.Uvarint(), c.Uvarint()
		e := prev
		if i == 0 {
			e = indexEntry{id: store.ID(id), off: int64(off)}
		} else {
			e.id += store.ID(id)
			e.off += int64(off)
			if off == 0 {
				return nil, fmt.Errorf("%w: footer index offsets not ascending", ErrCorrupt)
			}
		}
		if c.Err != nil || e.off < recStart || e.off >= x.dataEnd {
			return nil, fmt.Errorf("%w: footer index entry %d", ErrCorrupt, i)
		}
		x.entries = append(x.entries, e)
		prev = e
	}
	var err error
	if x.keys, err = parseBloom(c); err != nil {
		return nil, err
	}
	if x.ids, err = parseBloom(c); err != nil {
		return nil, err
	}
	if c.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing footer byte(s)", ErrCorrupt, c.Len())
	}
	return x, nil
}

func parseBloom(c *transport.Cursor) (*bloom, error) {
	m, k := c.Uvarint(), c.Uvarint()
	bits := c.Bytes()
	if c.Err != nil || m == 0 || m > bloomMaxBytes*8 || k == 0 || k > 32 || uint64(len(bits)) != (m+7)/8 {
		return nil, fmt.Errorf("%w: footer bloom", ErrCorrupt)
	}
	// Copy out of the read buffer: the filter outlives the parse.
	return &bloom{m: m, k: uint32(k), bits: append([]byte(nil), bits...)}, nil
}
