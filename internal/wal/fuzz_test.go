package wal

import (
	"testing"

	"p2prange/internal/rangeset"
	"p2prange/internal/store"
	"p2prange/internal/transport"
)

// FuzzWALRecordParse hammers the record parser with mutated bytes: a
// corrupt or truncated body must produce a clean error, and any body the
// parser accepts must re-encode to a byte-identical parse — the property
// recovery relies on when it walks a file of unknown integrity.
func FuzzWALRecordParse(f *testing.F) {
	seeds := []Record{
		{Op: OpPut, ID: 0xdeadbeef, Part: store.Partition{
			Relation: "Patient", Attribute: "age",
			Range:  rangeset.Range{Lo: -2, Hi: 113},
			Holder: "10.0.0.7:4000", Version: 9, Origin: "10.0.0.9:4000",
		}},
		{Op: OpEvict, ID: 42, Key: "Patient/age/[2,11]"},
		{Op: OpDropArc, From: 0xffffffff, To: 0},
		{Op: opSeal, Count: 1<<32 - 1},
	}
	for _, r := range seeds {
		payload := AppendRecord(nil, &r)
		f.Add(payload)
		for cut := 0; cut < len(payload); cut++ {
			f.Add(payload[:cut])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			return
		}
		rec, err := ParseRecord(transport.NewCursor(data))
		if err != nil {
			return
		}
		again := AppendRecord(nil, &rec)
		rec2, err := ParseRecord(transport.NewCursor(again))
		if err != nil {
			t.Fatalf("re-encoded record failed to parse: %v", err)
		}
		if rec != rec2 {
			t.Errorf("record changed across a round trip:\nfirst:  %+v\nsecond: %+v", rec, rec2)
		}
	})
}
