package wal

import (
	"errors"
	"reflect"
	"testing"

	"p2prange/internal/rangeset"
	"p2prange/internal/store"
	"p2prange/internal/transport"
)

// FuzzWALRecordParse hammers the record parser with mutated bytes: a
// corrupt or truncated body must produce a clean error, and any body the
// parser accepts must re-encode to a byte-identical parse — the property
// recovery relies on when it walks a file of unknown integrity.
func FuzzWALRecordParse(f *testing.F) {
	seeds := []Record{
		{Op: OpPut, ID: 0xdeadbeef, Part: store.Partition{
			Relation: "Patient", Attribute: "age",
			Range:  rangeset.Range{Lo: -2, Hi: 113},
			Holder: "10.0.0.7:4000", Version: 9, Origin: "10.0.0.9:4000",
		}},
		{Op: OpEvict, ID: 42, Key: "Patient/age/[2,11]"},
		{Op: OpDropArc, From: 0xffffffff, To: 0},
		{Op: opSeal, Count: 1<<32 - 1},
	}
	for _, r := range seeds {
		payload := AppendRecord(nil, &r)
		f.Add(payload)
		for cut := 0; cut < len(payload); cut++ {
			f.Add(payload[:cut])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			return
		}
		rec, err := ParseRecord(transport.NewCursor(data))
		if err != nil {
			return
		}
		again := AppendRecord(nil, &rec)
		rec2, err := ParseRecord(transport.NewCursor(again))
		if err != nil {
			t.Fatalf("re-encoded record failed to parse: %v", err)
		}
		if rec != rec2 {
			t.Errorf("record changed across a round trip:\nfirst:  %+v\nsecond: %+v", rec, rec2)
		}
	})
}

// FuzzSegmentFooterParse hammers the segment-footer parser, which reads
// the one region of a sealed segment not covered by record checksums
// until its own CRC is verified. A mutated footer must either be rejected
// (ErrCorrupt — the reader then rebuilds from the records) or parse into
// an index that re-encodes and re-parses identically; it must never
// panic or yield an index that disagrees with itself.
func FuzzSegmentFooterParse(f *testing.F) {
	const recStart, footerOff = 10, 1 << 20
	// A realistic footer: sparse entries, populated blooms.
	seedIdx := &segIndex{count: 130, dataEnd: 77777}
	for i := 0; i < 3; i++ {
		seedIdx.entries = append(seedIdx.entries, indexEntry{
			id:  store.ID(i * 1000),
			off: int64(20 + i*25600),
		})
	}
	seedIdx.keys, seedIdx.ids = newBloom(130), newBloom(130)
	for i := 0; i < 130; i++ {
		seedIdx.keys.add(hashIDKey(uint32(i), "Patient.age[0,10]"))
		seedIdx.ids.add(hashID(uint32(i)))
	}
	full := appendFooter(nil, seedIdx)
	body := full[:len(full)-segTrailerLen]
	f.Add(append([]byte(nil), body...))
	for cut := 0; cut < len(body); cut += 3 {
		f.Add(append([]byte(nil), body[:cut]...))
	}
	for pos := 0; pos < len(body); pos += 5 {
		mut := append([]byte(nil), body...)
		mut[pos] ^= 0x41
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		x, err := parseFooter(data, recStart, footerOff)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("footer rejection is not ErrCorrupt: %v", err)
			}
			return
		}
		again := appendFooter(nil, x)
		x2, err := parseFooter(again[:len(again)-segTrailerLen], recStart, footerOff)
		if err != nil {
			t.Fatalf("re-encoded footer failed to parse: %v", err)
		}
		if x.count != x2.count || x.dataEnd != x2.dataEnd ||
			!reflect.DeepEqual(x.entries, x2.entries) ||
			!reflect.DeepEqual(x.keys, x2.keys) || !reflect.DeepEqual(x.ids, x2.ids) {
			t.Errorf("footer changed across a round trip:\nfirst:  %+v\nsecond: %+v", x, x2)
		}
	})
}
