package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"p2prange/internal/transport"
)

// Offline inspection (walctl) and segment backup/restore. Everything
// here works on closed directories — no Log required — so an operator
// can check a backup without booting a peer.

// FileReport is one file's verification outcome.
type FileReport struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"` // "wal" or "segment"
	Seq     uint64 `json:"seq"`
	Bytes   int64  `json:"bytes"`
	Records int    `json:"records"`
	// Damage is empty for a fully valid file. A WAL file with a torn
	// tail reports it here: recovery would truncate and survive it, but
	// a cleanly shut down peer or a backup should verify clean.
	Damage string `json:"damage,omitempty"`
	// FooterDamage (segments only) means the read-path accelerator after
	// the seal failed its checksum. Boot survives it with a full-scan
	// index rebuild, but the file is not the one compaction wrote.
	FooterDamage string `json:"footer_damage,omitempty"`
}

// DirReport is a whole data directory's verification outcome.
type DirReport struct {
	Files   []FileReport `json:"files"`
	Records int          `json:"records"`
	Damaged int          `json:"damaged"` // files with Damage or FooterDamage
}

// Clean reports whether every file verified completely.
func (r DirReport) Clean() bool { return r.Damaged == 0 }

// InspectDir CRC-walks every WAL record and segment record+footer in
// dir. If dump is non-nil it receives every valid record in replay
// order per file (segments first would lie about ordering, so files are
// reported in name order and the caller sees which file each record
// came from). The returned error covers only scan-level failures;
// per-file damage lands in the report.
func InspectDir(dir string, dump func(file string, r Record)) (DirReport, error) {
	var rep DirReport
	walSeqs, segSeqs, err := scanDir(dir)
	if err != nil {
		return rep, err
	}
	for _, seq := range segSeqs {
		fr := inspectSegment(dir, seq, dump)
		rep.Records += fr.Records
		if fr.Damage != "" || fr.FooterDamage != "" {
			rep.Damaged++
		}
		rep.Files = append(rep.Files, fr)
	}
	for _, seq := range walSeqs {
		fr := inspectWAL(dir, seq, dump)
		rep.Records += fr.Records
		if fr.Damage != "" {
			rep.Damaged++
		}
		rep.Files = append(rep.Files, fr)
	}
	return rep, nil
}

func inspectWAL(dir string, seq uint64, dump func(string, Record)) FileReport {
	path := walPath(dir, seq)
	fr := FileReport{Name: filepath.Base(path), Kind: "wal", Seq: seq}
	data, err := os.ReadFile(path)
	if err != nil {
		fr.Damage = err.Error()
		return fr
	}
	fr.Bytes = int64(len(data))
	body, err := parseHeader(data, magicWAL, seq)
	if err != nil {
		fr.Damage = err.Error()
		return fr
	}
	n, werr := walkRecords(body, func(r Record) error {
		fr.Records++
		if dump != nil {
			dump(fr.Name, r)
		}
		return nil
	})
	if werr != nil {
		fr.Damage = fmt.Sprintf("%v (%d trailing byte(s) after last valid record)", werr, len(body)-n)
	}
	return fr
}

func inspectSegment(dir string, seq uint64, dump func(string, Record)) FileReport {
	path := segPath(dir, seq)
	fr := FileReport{Name: filepath.Base(path), Kind: "segment", Seq: seq}
	data, err := os.ReadFile(path)
	if err != nil {
		fr.Damage = err.Error()
		return fr
	}
	fr.Bytes = int64(len(data))
	body, err := parseHeader(data, magicSEG, seq)
	if err != nil {
		fr.Damage = err.Error()
		return fr
	}
	recStart := int64(len(data) - len(body))

	// Record stream: every frame CRC-checked up to and including the
	// seal, exactly the boot acceptance test.
	sealed := false
	var sealEnd int64
	var count uint64
	n, werr := walkRecords(body, func(r Record) error {
		if r.Op == opSeal {
			sealed, count = true, r.Count
			return errSealStop
		}
		fr.Records++
		if dump != nil {
			dump(fr.Name, r)
		}
		return nil
	})
	sealEnd = recStart + int64(n)
	switch {
	case werr != nil && !errors.Is(werr, errSealStop):
		fr.Damage = werr.Error()
		return fr
	case !sealed:
		fr.Damage = "unsealed segment"
		return fr
	case count != uint64(fr.Records):
		fr.Damage = fmt.Sprintf("seal count %d, walked %d records", count, fr.Records)
		return fr
	}
	// The seal frame itself: walkRecords stops at its start when fn
	// aborts, but it already CRC-validated the frame — just measure it to
	// find where the footer begins.
	c := transport.NewCursor(data[sealEnd:])
	length := c.Uvarint()
	hdr := len(data[sealEnd:]) - c.Len()
	footerStart := sealEnd + int64(hdr) + int64(length)
	if ferr := verifyFooter(data, recStart, footerStart, fr.Records); ferr != nil {
		fr.FooterDamage = ferr.Error()
	}
	return fr
}

// verifyFooter checks the index/bloom footer between footerStart and
// EOF: trailer magic and bounds, footer checksum, decoded contents, and
// the record count cross-check against the walked stream.
func verifyFooter(data []byte, recStart, footerStart int64, records int) error {
	if int64(len(data)) < footerStart+segTrailerLen {
		return fmt.Errorf("missing footer (%d byte(s) after seal)", int64(len(data))-footerStart)
	}
	tr := data[len(data)-segTrailerLen:]
	if !bytes.Equal(tr[12:16], magicIdx) {
		return fmt.Errorf("trailer magic mismatch")
	}
	footerOff := int64(binary.LittleEndian.Uint64(tr[0:8]))
	footerLen := int64(binary.LittleEndian.Uint32(tr[8:12]))
	if footerOff != footerStart || footerLen < 5 || footerOff+footerLen+segTrailerLen != int64(len(data)) {
		return fmt.Errorf("trailer bounds (footer at %d+%d, seal ends at %d, file %d)",
			footerOff, footerLen, footerStart, len(data))
	}
	x, err := parseFooter(data[footerOff:footerOff+footerLen], recStart, footerOff)
	if err != nil {
		return err
	}
	if x.count != records {
		return fmt.Errorf("footer count %d, walked %d records", x.count, records)
	}
	return nil
}

// BackupSegment copies the newest sealed segment into dstDir — chunked
// through the same reader snapshot seeding uses, verified as a complete
// bootable segment before the rename, older backups pruned after. A
// no-op (seq, 0, nil) when dstDir already holds a verified copy or no
// segment exists yet. The result doubles as a restore source for
// `walctl restore`.
func (l *Log) BackupSegment(dstDir string) (seq uint64, copied int64, err error) {
	for attempt := 0; attempt < 3; attempt++ {
		var size int64
		var ok bool
		seq, size, ok = l.SegmentInfo()
		if !ok {
			return 0, 0, nil
		}
		dst := segPath(dstDir, seq)
		if fi, err := os.Stat(dst); err == nil && fi.Size() == size {
			return seq, 0, nil
		}
		if err := os.MkdirAll(dstDir, 0o755); err != nil {
			return seq, 0, fmt.Errorf("wal: backup: %w", err)
		}
		img := make([]byte, 0, size)
		gone := false
		for off := int64(0); off < size; {
			chunk, total, err := l.ReadSegmentChunk(seq, off, 1<<20)
			if errors.Is(err, ErrSegmentGone) || (err == nil && total != size) {
				gone = true // compaction replaced it mid-copy; retry against the new one
				break
			}
			if err != nil {
				return seq, 0, err
			}
			img = append(img, chunk...)
			off += int64(len(chunk))
		}
		if gone {
			continue
		}
		if _, err := ParseSegment(img, seq); err != nil {
			return seq, 0, fmt.Errorf("wal: backup verify: %w", err)
		}
		tmp := dst + ".tmp"
		if err := os.WriteFile(tmp, img, 0o644); err != nil {
			return seq, 0, fmt.Errorf("wal: backup write: %w", err)
		}
		if f, err := os.Open(tmp); err == nil {
			f.Sync()
			f.Close()
		}
		if err := os.Rename(tmp, dst); err != nil {
			os.Remove(tmp)
			return seq, 0, fmt.Errorf("wal: backup rename: %w", err)
		}
		if err := syncDir(dstDir); err != nil {
			return seq, 0, err
		}
		// Prune older backups: the newest verified segment subsumes them.
		if _, segSeqs, err := scanDir(dstDir); err == nil {
			for _, s := range segSeqs {
				if s < seq {
					os.Remove(segPath(dstDir, s))
				}
			}
		}
		return seq, int64(len(img)), nil
	}
	return seq, 0, fmt.Errorf("wal: backup: segment kept changing underfoot")
}

// RestoreSegment installs a sealed-segment file (e.g. from a backup
// directory) into an empty data directory, fully verified, so the next
// `peerd -data-dir` boot recovers from it. src may be the segment file
// itself or a directory holding one (the newest valid one wins).
func RestoreSegment(src, dstDir string) (seq uint64, records int, err error) {
	path := src
	if fi, err := os.Stat(src); err == nil && fi.IsDir() {
		_, segSeqs, err := scanDir(src)
		if err != nil {
			return 0, 0, err
		}
		if len(segSeqs) == 0 {
			return 0, 0, fmt.Errorf("wal: restore: no segment files in %s", src)
		}
		path = segPath(src, segSeqs[len(segSeqs)-1])
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: restore: %w", err)
	}
	if len(data) < len(magicSEG) || !bytes.Equal(data[:len(magicSEG)], magicSEG) {
		return 0, 0, fmt.Errorf("wal: restore: %s is not a segment file", path)
	}
	c := transport.NewCursor(data[len(magicSEG):])
	seq = c.Uvarint()
	if c.Err != nil || seq == 0 {
		return 0, 0, fmt.Errorf("wal: restore: torn segment header in %s", path)
	}
	recs, err := ParseSegment(data, seq)
	if err != nil {
		return seq, 0, fmt.Errorf("wal: restore verify: %w", err)
	}
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return seq, 0, fmt.Errorf("wal: restore: %w", err)
	}
	walSeqs, segSeqs, err := scanDir(dstDir)
	if err != nil {
		return seq, 0, err
	}
	if len(walSeqs)+len(segSeqs) > 0 {
		return seq, 0, fmt.Errorf("wal: restore: %s is not empty (%d wal, %d segment file(s)) — refusing to overwrite a live data dir",
			dstDir, len(walSeqs), len(segSeqs))
	}
	tmp := segPath(dstDir, seq) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return seq, 0, fmt.Errorf("wal: restore write: %w", err)
	}
	if f, err := os.Open(tmp); err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, segPath(dstDir, seq)); err != nil {
		os.Remove(tmp)
		return seq, 0, fmt.Errorf("wal: restore rename: %w", err)
	}
	if err := syncDir(dstDir); err != nil {
		return seq, 0, err
	}
	return seq, len(recs), nil
}
