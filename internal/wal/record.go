package wal

import (
	"fmt"
	"hash/crc32"

	"p2prange/internal/store"
	"p2prange/internal/transport"
)

// On-disk record codec. Every mutation of a durable store is one framed
// record, reusing the wire protocol's primitives (uvarint integers,
// zigzag varints, length-prefixed strings) so the two formats share one
// set of parsing idioms and hostile-input clamps. The full byte-level
// specification lives in docs/DURABILITY.md; this file is its
// implementation.
//
// Framing (both WAL and segment files, after the 9-byte file header):
//
//	length  uvarint   byte count of what follows (crc + body), <= MaxRecord
//	crc     4 bytes   little-endian CRC32-C over body
//	body    length-4 bytes, starting with a 1-byte op
//
// Like wire tags, ops are on-disk protocol: never renumber one, only
// append.

// Record ops.
const (
	// OpPut admits or upgrades one descriptor in a bucket (the durable
	// form of store.Put — replay applies first-wins/higher-version-
	// replaces semantics, so re-applying a prefix is idempotent).
	OpPut byte = 1
	// OpEvict removes one descriptor by key (bounded-store eviction).
	OpEvict byte = 2
	// OpDropArc removes every bucket on the ring arc (From, To]
	// (ownership handoff when a predecessor joins or this peer leaves).
	OpDropArc byte = 3
	// opSeal terminates a segment file, carrying the record count; a
	// segment without a valid seal is a partial compaction and ignored.
	// Seal records inside a WAL file are skipped (not an error), so the
	// record stream stays forward-compatible.
	opSeal byte = 4
)

// MaxRecord bounds one framed record. A length prefix above it is
// corruption, rejected before any allocation — the same clamp discipline
// as transport.MaxFrame, scaled to a single descriptor mutation.
const MaxRecord = 1 << 20

// Record is one decoded durable mutation.
type Record struct {
	Op byte
	// ID is the bucket identifier (OpPut, OpEvict).
	ID store.ID
	// Part is the descriptor, version and origin stamps included (OpPut).
	Part store.Partition
	// Key is the descriptor identity being removed (OpEvict).
	Key string
	// From, To delimit the dropped ring arc (OpDropArc).
	From, To store.ID
	// Count is the sealed record total (opSeal, segment files only).
	Count uint64
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record that failed framing, checksum, or body
// validation. A corrupt record ends replay at the last good offset; it
// is data loss only if the record was ever acknowledged, which the
// commit protocol prevents (records are acknowledged only after fsync).
var ErrCorrupt = fmt.Errorf("wal: corrupt record")

// AppendRecord appends r's body encoding (op byte + op-specific fields,
// no framing) to b.
func AppendRecord(b []byte, r *Record) []byte {
	b = append(b, r.Op)
	switch r.Op {
	case OpPut:
		b = transport.AppendUvarint(b, uint64(r.ID))
		b = transport.AppendString(b, r.Part.Relation)
		b = transport.AppendString(b, r.Part.Attribute)
		b = transport.AppendVarint(b, r.Part.Range.Lo)
		b = transport.AppendVarint(b, r.Part.Range.Hi)
		b = transport.AppendString(b, r.Part.Holder)
		b = transport.AppendUvarint(b, r.Part.Version)
		b = transport.AppendString(b, r.Part.Origin)
	case OpEvict:
		b = transport.AppendUvarint(b, uint64(r.ID))
		b = transport.AppendString(b, r.Key)
	case OpDropArc:
		b = transport.AppendUvarint(b, uint64(r.From))
		b = transport.AppendUvarint(b, uint64(r.To))
	case opSeal:
		b = transport.AppendUvarint(b, r.Count)
	}
	return b
}

// ParseRecord decodes one record body from c, consuming exactly the
// bytes AppendRecord produced. Unknown ops and trailing garbage are
// ErrCorrupt: a record body must parse completely.
func ParseRecord(c *transport.Cursor) (Record, error) {
	var r Record
	if c.Len() < 1 {
		return r, fmt.Errorf("%w: empty body", ErrCorrupt)
	}
	r.Op = byte(c.Uvarint())
	switch r.Op {
	case OpPut:
		r.ID = store.ID(c.Uvarint())
		r.Part.Relation = c.String()
		r.Part.Attribute = c.String()
		r.Part.Range.Lo = c.Varint()
		r.Part.Range.Hi = c.Varint()
		r.Part.Holder = c.String()
		r.Part.Version = c.Uvarint()
		r.Part.Origin = c.String()
	case OpEvict:
		r.ID = store.ID(c.Uvarint())
		r.Key = c.String()
	case OpDropArc:
		r.From = store.ID(c.Uvarint())
		r.To = store.ID(c.Uvarint())
	case opSeal:
		r.Count = c.Uvarint()
	default:
		return r, fmt.Errorf("%w: unknown op %d", ErrCorrupt, r.Op)
	}
	if c.Err != nil {
		return r, fmt.Errorf("%w: truncated body", ErrCorrupt)
	}
	if c.Len() != 0 {
		return r, fmt.Errorf("%w: %d trailing byte(s) after op %d", ErrCorrupt, c.Len(), r.Op)
	}
	return r, nil
}

// appendFramed appends the full framed form of r — length prefix,
// checksum, body — to b.
func appendFramed(b []byte, r *Record) []byte {
	body := AppendRecord(nil, r)
	b = transport.AppendUvarint(b, uint64(len(body)+4))
	var crc [4]byte
	sum := crc32.Checksum(body, crcTable)
	crc[0], crc[1], crc[2], crc[3] = byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24)
	b = append(b, crc[:]...)
	return append(b, body...)
}

// walkRecords parses framed records from data, calling fn for each fully
// valid one, and returns the offset just past the last valid record. A
// clean end returns a nil error; a torn or corrupt tail returns the
// describing error with the offset still pointing at the last good
// record, so callers can truncate there. fn returning an error aborts
// the walk (and is returned verbatim).
func walkRecords(data []byte, fn func(Record) error) (int, error) {
	return walkRecordsWith(transport.NewCursor(nil), data, fn)
}

// walkRecordsWith is walkRecords over a caller-owned cursor, so hot
// paths (the follower's shipped-batch apply) can reuse one cursor and
// its interner across calls.
func walkRecordsWith(c *transport.Cursor, data []byte, fn func(Record) error) (int, error) {
	off := 0
	for off < len(data) {
		c.Reset(data[off:])
		length := c.Uvarint()
		if c.Err != nil {
			return off, fmt.Errorf("%w: torn length prefix", ErrCorrupt)
		}
		if length < 5 || length > MaxRecord {
			return off, fmt.Errorf("%w: record length %d", ErrCorrupt, length)
		}
		if uint64(c.Len()) < length {
			return off, fmt.Errorf("%w: torn record (%d of %d bytes)", ErrCorrupt, c.Len(), length)
		}
		hdr := len(data[off:]) - c.Len() // bytes the length prefix consumed
		frame := data[off+hdr : off+hdr+int(length)]
		sum := uint32(frame[0]) | uint32(frame[1])<<8 | uint32(frame[2])<<16 | uint32(frame[3])<<24
		body := frame[4:]
		if crc32.Checksum(body, crcTable) != sum {
			return off, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		}
		c.Reset(body)
		rec, err := ParseRecord(c)
		if err != nil {
			return off, err
		}
		if err := fn(rec); err != nil {
			return off, err
		}
		off += hdr + int(length)
	}
	return off, nil
}

// AppendFramed appends the full framed form of r — length prefix,
// checksum, body — to b: the same encoding WAL files hold and the
// shipping protocol streams, so a receiver can WalkBuffer it.
func AppendFramed(b []byte, r *Record) []byte {
	return appendFramed(b, r)
}
