package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"p2prange/internal/store"
	"p2prange/internal/trace"
)

// Recovery summarizes what Open found and replayed. Every count is also
// emitted on the recovery trace span and the wal.* metrics, so a
// restart is observable end to end.
type Recovery struct {
	// SegmentSeq is the sealed segment the boot image started from
	// (0 = none existed).
	SegmentSeq uint64 `json:"segment_seq"`
	// SegmentRecords is the number of descriptors restored from it.
	SegmentRecords int `json:"segment_records"`
	// BadSegments counts sealed-looking segments that failed validation
	// and were skipped (an older segment or the WAL still covered them).
	BadSegments int `json:"bad_segments,omitempty"`
	// WALFiles is the number of WAL files replayed on top.
	WALFiles int `json:"wal_files"`
	// Replayed is the number of WAL records applied.
	Replayed int `json:"replayed"`
	// TornTail reports that replay hit a torn or corrupt record. The
	// file was truncated at the last valid record, so the next boot
	// replays cleanly.
	TornTail bool `json:"torn_tail,omitempty"`
	// DroppedFiles counts WAL files discarded because they followed a
	// corrupt record in an earlier file (their ordering guarantee was
	// gone). Only media corruption — never a plain crash — causes this.
	DroppedFiles int `json:"dropped_files,omitempty"`
	// ReadThrough reports that the boot segment was opened for
	// read-through (kept on disk behind a reader) instead of loaded into
	// memory.
	ReadThrough bool `json:"read_through,omitempty"`
	// IndexRebuilt reports that the boot segment's footer (index +
	// blooms) was damaged and rebuilt by a full scan. Slower boot, same
	// answers.
	IndexRebuilt bool `json:"index_rebuilt,omitempty"`
	// Elapsed is the wall-clock time Open spent scanning and replaying.
	Elapsed time.Duration `json:"elapsed"`
}

// StoreRestorer adapts a store into Open's apply callback: puts restore
// descriptors with their version and origin stamps intact (so
// anti-entropy later backfills only what is genuinely missing), evicts
// and arc-drops replay removals. Attach the store's journal only AFTER
// Open returns, or recovery would re-journal its own replay.
func StoreRestorer(s *store.Store) func(Record) error {
	return func(r Record) error {
		switch r.Op {
		case OpPut:
			s.Put(r.ID, r.Part)
		case OpEvict:
			s.Delete(r.ID, r.Key)
		case OpDropArc:
			s.ExtractArc(r.From, r.To)
		}
		return nil
	}
}

// Open recovers the durable state in opt.Dir — newest valid segment
// first, then every WAL file above it, in order, stopping at the first
// torn record — feeding each surviving record to apply. It then starts
// a fresh WAL file and returns the live log. The directory is created
// if missing (an empty one is simply a new peer). Open never returns a
// log on error; a nil error means the log is ready for write-through.
//
// Replay is conservative: a torn tail is truncated in place (the bytes
// after the last valid record were never acknowledged, by the commit
// barrier), and WAL files after a mid-stream corruption are deleted
// rather than replayed out of order — anti-entropy re-fetches anything
// lost to actual media corruption.
func Open(opt Options, apply func(Record) error) (*Log, Recovery, error) {
	start := time.Now()
	var rec Recovery
	if opt.Dir == "" {
		return nil, rec, fmt.Errorf("wal: no data directory")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, rec, fmt.Errorf("wal: %w", err)
	}
	sp := trace.New("wal.recover")
	defer sp.End()

	walSeqs, segSeqs, err := scanDir(opt.Dir)
	if err != nil {
		return nil, rec, err
	}

	// Phase 1: newest fully-valid segment wins; bad ones are skipped
	// (all-or-nothing — a segment either loads completely or not at all).
	// In ReadThrough mode the segment's records stay on disk behind a
	// reader (a damaged footer only forces an index rebuild — the record
	// stream still decides validity); otherwise they are applied into
	// memory as before.
	var maxSeq uint64
	var reader *SegmentReader
	for i := len(segSeqs) - 1; i >= 0; i-- {
		seq := segSeqs[i]
		if seq > maxSeq {
			maxSeq = seq
		}
		if rec.SegmentSeq != 0 {
			continue
		}
		if opt.ReadThrough {
			r, err := OpenSegmentReader(opt.Dir, seq)
			if err != nil {
				rec.BadSegments++
				sp.Eventf("segment", "skip seg %d: %v", seq, err)
				continue
			}
			reader = r
			rec.SegmentSeq = seq
			rec.SegmentRecords = r.Len()
			rec.IndexRebuilt = r.Rebuilt()
			sp.Eventf("segment", "opened seg %d for read-through: %d records (index rebuilt: %v)",
				seq, r.Len(), r.Rebuilt())
			continue
		}
		puts, err := loadSegment(opt.Dir, seq)
		if err != nil {
			rec.BadSegments++
			sp.Eventf("segment", "skip seg %d: %v", seq, err)
			continue
		}
		for i := range puts {
			if err := apply(puts[i]); err != nil {
				return nil, rec, err
			}
		}
		rec.SegmentSeq = seq
		rec.SegmentRecords = len(puts)
		sp.Eventf("segment", "restored %d records from seg %d", len(puts), seq)
	}
	rec.ReadThrough = opt.ReadThrough
	if opt.ReadThrough && opt.OnSegment != nil {
		// Attach the disk tier before WAL replay: replayed puts must see
		// the segment to dedupe against it.
		if err := opt.OnSegment(reader); err != nil {
			if reader != nil {
				reader.Close()
			}
			return nil, rec, err
		}
	}
	fail := func(err error) (*Log, Recovery, error) {
		if reader != nil {
			reader.Close()
		}
		return nil, rec, err
	}

	// Phase 2: replay WAL files above the segment, ascending. Files at
	// or below it were folded in already — stale leftovers, removed.
	for i := 0; i < len(walSeqs); i++ {
		seq := walSeqs[i]
		if seq > maxSeq {
			maxSeq = seq
		}
		if seq <= rec.SegmentSeq {
			os.Remove(walPath(opt.Dir, seq))
			continue
		}
		path := walPath(opt.Dir, seq)
		data, err := os.ReadFile(path)
		if err != nil {
			return fail(fmt.Errorf("wal: %w", err))
		}
		body, herr := parseHeader(data, magicWAL, seq)
		applied := 0
		var off int
		var werr error
		if herr == nil {
			off, werr = walkRecords(body, func(r Record) error {
				if err := apply(r); err != nil {
					return err
				}
				applied++
				return nil
			})
		}
		rec.WALFiles++
		rec.Replayed += applied
		sp.Eventf("replay", "wal %d: %d records", seq, applied)
		if herr == nil && werr == nil {
			continue
		}
		if werr != nil && !errors.Is(werr, ErrCorrupt) {
			// apply itself failed — a recovery bug, not disk damage.
			return fail(werr)
		}
		// Torn or corrupt record: truncate this file at the last valid
		// record and drop every later file — records after a tear have
		// no ordering guarantee. Commit acknowledges only after fsync,
		// so nothing acknowledged lives past this point in this file.
		rec.TornTail = true
		metTornTails.Inc()
		if herr != nil {
			sp.Eventf("torn", "wal %d: %v — dropping file", seq, herr)
			os.Remove(path)
		} else {
			sp.Eventf("torn", "wal %d: %v — truncated at %d records", seq, werr, applied)
			if terr := os.Truncate(path, int64(len(data)-len(body)+off)); terr != nil {
				return fail(fmt.Errorf("wal: truncate torn tail: %w", terr))
			}
		}
		for _, later := range walSeqs[i+1:] {
			if later > maxSeq {
				maxSeq = later
			}
			os.Remove(walPath(opt.Dir, later))
			rec.DroppedFiles++
		}
		break
	}
	if rec.DroppedFiles > 0 {
		sp.Eventf("torn", "dropped %d later wal file(s)", rec.DroppedFiles)
	}

	// Phase 3: start a fresh WAL strictly above everything seen, so a
	// half-replayed boot can never append into a file it distrusted.
	if opt.CompactEvery == 0 {
		opt.CompactEvery = DefaultCompactEvery
	} else if opt.CompactEvery < 0 {
		opt.CompactEvery = 0
	}
	seq := maxSeq + 1
	f, err := createFile(walPath(opt.Dir, seq), magicWAL, seq)
	if err != nil {
		return fail(err)
	}
	if err := syncDir(opt.Dir); err != nil {
		f.Close()
		return fail(err)
	}
	retain := opt.ShipRetain
	if retain == 0 {
		retain = DefaultShipRetain
	} else if retain < 0 {
		retain = 0
	}
	l := &Log{
		dir:          opt.Dir,
		fsync:        opt.Fsync,
		compactEvery: opt.CompactEvery,
		readThrough:  opt.ReadThrough,
		onSwap:       opt.OnSwap,
		retainBytes:  retain,
		onSeal:       opt.OnSeal,
		onRetainDrop: opt.OnRetainDrop,
		f:            f,
		seq:          seq,
		segSeq:       rec.SegmentSeq,
		reader:       reader,
		sinceFold:    rec.Replayed, // unfolded records carried over; fold soon if many
		durableOff:   headerLen(seq),
	}
	l.cond = sync.NewCond(&l.mu)

	rec.Elapsed = time.Since(start)
	metRecovers.Inc()
	metReplayed.Add(uint64(rec.Replayed))
	sp.Eventf("open", "active wal %d, %s", seq, rec.Elapsed.Round(time.Microsecond))
	return l, rec, nil
}

// scanDir lists WAL and segment sequence numbers in ascending order,
// deleting stray temp files from an interrupted compaction.
func scanDir(dir string) (walSeqs, segSeqs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		var seq uint64
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if _, err := fmt.Sscanf(name, "wal-%016x.log", &seq); err == nil && seq > 0 {
				walSeqs = append(walSeqs, seq)
			}
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg"):
			if _, err := fmt.Sscanf(name, "seg-%016x.seg", &seq); err == nil && seq > 0 {
				segSeqs = append(segSeqs, seq)
			}
		}
	}
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] })
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	return walSeqs, segSeqs, nil
}
