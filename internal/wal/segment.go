package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sort"

	"p2prange/internal/store"
	"p2prange/internal/transport"
)

// Segment files are the folded, immutable form of the log: one OpPut
// record per live descriptor (eviction and arc-drop records cancel puts
// during the fold, so they never appear in a segment), terminated by a
// seal record carrying the put count. A segment missing its seal — or
// failing any frame check before it — is a partial compaction and is
// ignored as a whole; the WAL files it would have replaced are still on
// disk, because compaction deletes its inputs only after the sealed
// segment is durable.

// File header magics. The trailing byte is the format version.
var (
	magicWAL = []byte("p2rWAL\x00\x01")
	magicSEG = []byte("p2rSEG\x00\x01")
)

// createFile creates path exclusively, writes the header (magic +
// uvarint seq), and syncs it so the header itself cannot be torn.
func createFile(path string, magic []byte, seq uint64) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	hdr := append(make([]byte, 0, len(magic)+10), magic...)
	hdr = transport.AppendUvarint(hdr, seq)
	if _, err := f.Write(hdr); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("wal: write header: %w", err)
	}
	return f, nil
}

// parseHeader checks data's magic and sequence number and returns the
// record region that follows.
func parseHeader(data, magic []byte, wantSeq uint64) ([]byte, error) {
	if len(data) < len(magic) || !bytes.Equal(data[:len(magic)], magic) {
		return nil, fmt.Errorf("%w: bad file magic", ErrCorrupt)
	}
	c := transport.NewCursor(data[len(magic):])
	seq := c.Uvarint()
	if c.Err != nil {
		return nil, fmt.Errorf("%w: torn header", ErrCorrupt)
	}
	if seq != wantSeq {
		return nil, fmt.Errorf("%w: header seq %d, filename says %d", ErrCorrupt, seq, wantSeq)
	}
	return data[len(data)-c.Len():], nil
}

// foldState is the in-memory image a fold builds: bucket id -> descriptor
// key -> descriptor. Applying a record stream to it reproduces exactly
// the store.Put / Delete / ExtractArc semantics, so folding then
// restoring equals replaying.
type foldState map[store.ID]map[string]store.Partition

func (st foldState) apply(r Record) {
	switch r.Op {
	case OpPut:
		key := r.Part.Key()
		bucket := st[r.ID]
		if bucket == nil {
			bucket = make(map[string]store.Partition)
			st[r.ID] = bucket
		}
		// First holder wins; a strictly higher version upgrades in place
		// (store.Put's admission rule).
		if have, ok := bucket[key]; !ok || r.Part.Version > have.Version {
			bucket[key] = r.Part
		}
	case OpEvict:
		if bucket, ok := st[r.ID]; ok {
			delete(bucket, r.Key)
			if len(bucket) == 0 {
				delete(st, r.ID)
			}
		}
	case OpDropArc:
		for id := range st {
			if onArcRightIncl(r.From, r.To, id) {
				delete(st, id)
			}
		}
	}
}

// onArcRightIncl reports whether x lies on the ring arc (from, to]
// (mirrors store's betweenRightIncl, including from==to = whole circle).
func onArcRightIncl(from, to, x store.ID) bool {
	if x == to {
		return true
	}
	if from < to {
		return from < x && x < to
	}
	return x > from || x < to
}

// foldFiles builds the fold state from segment segSeq (if any) plus the
// WAL files with sequence numbers in (segSeq, upto]. A missing WAL file
// in that range is fine (nothing was ever written at that sequence —
// cannot happen today, but tolerating it keeps folds total); a corrupt
// record mid-file ends that file's contribution at the tear, exactly as
// recovery would.
func foldFiles(dir string, segSeq, upto uint64) (foldState, int, error) {
	state := make(foldState)
	folded := 0
	if segSeq != 0 {
		recs, err := loadSegment(dir, segSeq)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: fold base segment %d: %w", segSeq, err)
		}
		for _, r := range recs {
			state.apply(r)
		}
		folded += len(recs)
	}
	for seq := segSeq + 1; seq <= upto; seq++ {
		data, err := os.ReadFile(walPath(dir, seq))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, 0, fmt.Errorf("wal: fold: %w", err)
		}
		recs, err := parseHeader(data, magicWAL, seq)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: fold wal %d: %w", seq, err)
		}
		n, _ := walkRecords(recs, func(r Record) error {
			state.apply(r)
			folded++
			return nil
		})
		_ = n // a torn tail ends this file's records; later files still fold
	}
	return state, folded, nil
}

// writeSegment writes state as sealed segment seq, atomically: records
// go to a .tmp file, which is fsynced and renamed into place, then the
// directory is fsynced. Output order is deterministic (ascending bucket
// id, then key) so identical states produce identical files.
func writeSegment(dir string, seq uint64, state foldState) error {
	ids := make([]store.ID, 0, len(state))
	for id := range state {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	total := 0
	for _, id := range ids {
		total += len(state[id])
	}
	buf := append([]byte(nil), magicSEG...)
	buf = transport.AppendUvarint(buf, seq)
	x := &segIndex{keys: newBloom(total), ids: newBloom(total)}
	for _, id := range ids {
		bucket := state[id]
		keys := make([]string, 0, len(bucket))
		for k := range bucket {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := bucket[k]
			if x.count%segIndexEvery == 0 {
				x.entries = append(x.entries, indexEntry{id: id, off: int64(len(buf))})
			}
			x.keys.add(hashIDKey(uint32(id), k))
			x.ids.add(hashID(uint32(id)))
			buf = appendFramed(buf, &Record{Op: OpPut, ID: id, Part: p})
			x.count++
		}
	}
	x.dataEnd = int64(len(buf))
	buf = appendFramed(buf, &Record{Op: opSeal, Count: uint64(x.count)})
	// The footer (sparse index + blooms + locator trailer) rides after the
	// seal: the seal stays the commit point, the footer only accelerates
	// reads and is rebuilt from a scan if damaged (segreader.go).
	buf = appendFooter(buf, x)

	tmp := segPath(dir, seq) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: segment tmp: %w", err)
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: segment write: %w", err)
	}
	if err := os.Rename(tmp, segPath(dir, seq)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: segment rename: %w", err)
	}
	return syncDir(dir)
}

// errSealStop ends a segment walk cleanly at the seal record.
var errSealStop = errors.New("wal: seal reached")

// loadSegment reads sealed segment seq and returns its put records. The
// record stream is all-or-nothing: any framing failure, a missing seal,
// or a seal count mismatch rejects the whole file. Bytes after the seal
// are the footer (index + blooms, possibly damaged) and are ignored —
// the seal is the commit point, the footer only accelerates reads.
func loadSegment(dir string, seq uint64) ([]Record, error) {
	data, err := os.ReadFile(segPath(dir, seq))
	if err != nil {
		return nil, err
	}
	return ParseSegment(data, seq)
}

// ParseSegment validates a full sealed-segment image (as read from disk
// or reassembled from streamed snapshot chunks) and returns its put
// records. Same all-or-nothing contract as booting from the file: every
// record CRC-checked, seal present, seal count matching. This is how a
// snapshot-seeded follower proves the bytes it received are exactly a
// bootable segment before applying them.
func ParseSegment(data []byte, seq uint64) ([]Record, error) {
	recs, err := parseHeader(data, magicSEG, seq)
	if err != nil {
		return nil, err
	}
	var puts []Record
	sealed := false
	_, err = walkRecords(recs, func(r Record) error {
		switch r.Op {
		case opSeal:
			if r.Count != uint64(len(puts)) {
				return fmt.Errorf("%w: seal count %d, have %d records", ErrCorrupt, r.Count, len(puts))
			}
			sealed = true
			return errSealStop
		case OpPut:
			puts = append(puts, r)
		default:
			return fmt.Errorf("%w: op %d in segment", ErrCorrupt, r.Op)
		}
		return nil
	})
	if err != nil && !errors.Is(err, errSealStop) {
		return nil, err
	}
	if !sealed {
		return nil, fmt.Errorf("%w: unsealed segment", ErrCorrupt)
	}
	return puts, nil
}
