package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"sync"

	"p2prange/internal/metrics"
	"p2prange/internal/store"
	"p2prange/internal/transport"
)

var (
	metSegReads     = metrics.Default.Counter("wal.seg_reads")
	metSegReadBytes = metrics.Default.Counter("wal.seg_read_bytes")
	metSegBloomSkip = metrics.Default.Counter("wal.seg_bloom_skips")
	metSegReadErrs  = metrics.Default.Counter("wal.seg_read_errors")
	metSegRebuilds  = metrics.Default.Counter("wal.seg_index_rebuilds")
)

// SegmentReader is the disk tier behind a bounded store.
var _ store.SegmentSource = (*SegmentReader)(nil)

// SegmentReader serves point reads and arc scans from one sealed segment
// file without loading it into memory: the sparse footer index finds the
// neighborhood, a short bounded walk finds the record, and the bloom
// filters turn most misses into zero-I/O answers. It implements
// store.SegmentSource, making it the disk tier behind a bounded store.
//
// Readers are safe for concurrent use: all file access goes through
// ReadAt on an immutable file, and scratch buffers come from a pool.
type SegmentReader struct {
	f        *os.File
	path     string
	seq      uint64
	size     int64
	recStart int64 // first byte after the file header
	idx      *segIndex
	rebuilt  bool // footer was damaged; idx came from a full scan
}

// segChunk is the read granularity for walks; records larger than one
// chunk grow the scratch buffer on demand.
const segChunk = 64 << 10

// segWalker is pooled per-walk scratch: the read buffer and a reusable
// cursor (with its string interner) so steady-state probes allocate
// nothing.
type segWalker struct {
	buf []byte
	c   *transport.Cursor
}

var walkerPool = sync.Pool{New: func() any {
	return &segWalker{buf: make([]byte, segChunk), c: transport.NewCursor(nil)}
}}

// OpenSegmentReader opens sealed segment seq in dir for read-through.
// A valid footer makes this O(footer bytes); a damaged or missing footer
// falls back to a full streaming scan that rebuilds the index and bloom
// filters in memory (counted in wal.seg_index_rebuilds). Either way the
// seal record is verified — an unsealed or mid-stream-corrupt segment is
// rejected entirely, exactly as loadSegment would.
func OpenSegmentReader(dir string, seq uint64) (*SegmentReader, error) {
	path := segPath(dir, seq)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat segment: %w", err)
	}
	r := &SegmentReader{f: f, path: path, seq: seq, size: fi.Size()}

	hdr := make([]byte, len(magicSEG)+binary.MaxVarintLen64)
	if r.size < int64(len(hdr)) {
		hdr = hdr[:r.size]
	}
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: segment header: %v", ErrCorrupt, err)
	}
	rest, err := parseHeader(hdr, magicSEG, seq)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.recStart = int64(len(hdr) - len(rest))

	if x, err := r.loadFooter(); err == nil {
		r.idx = x
	} else {
		metSegRebuilds.Inc()
		x, rerr := r.rebuildIndex()
		if rerr != nil {
			f.Close()
			return nil, rerr
		}
		r.idx = x
		r.rebuilt = true
	}
	return r, nil
}

// loadFooter locates the footer via the fixed trailer at EOF, checks its
// checksum and bounds, and cross-checks the seal record it points at.
// Any failure is ErrCorrupt: the caller rebuilds instead.
func (r *SegmentReader) loadFooter() (*segIndex, error) {
	if r.size < r.recStart+segTrailerLen {
		return nil, fmt.Errorf("%w: no room for trailer", ErrCorrupt)
	}
	var tr [segTrailerLen]byte
	if _, err := r.f.ReadAt(tr[:], r.size-segTrailerLen); err != nil {
		return nil, fmt.Errorf("%w: trailer read: %v", ErrCorrupt, err)
	}
	if string(tr[12:16]) != string(magicIdx) {
		return nil, fmt.Errorf("%w: trailer magic", ErrCorrupt)
	}
	footerOff := int64(binary.LittleEndian.Uint64(tr[0:8]))
	footerLen := int64(binary.LittleEndian.Uint32(tr[8:12]))
	if footerOff <= r.recStart || footerLen < 5 || footerOff+footerLen+segTrailerLen != r.size {
		return nil, fmt.Errorf("%w: trailer bounds", ErrCorrupt)
	}
	data := make([]byte, footerLen)
	if _, err := r.f.ReadAt(data, footerOff); err != nil {
		return nil, fmt.Errorf("%w: footer read: %v", ErrCorrupt, err)
	}
	x, err := parseFooter(data, r.recStart, footerOff)
	if err != nil {
		return nil, err
	}
	// The footer's checksum protects the footer; the seal it points at
	// ties it to the record stream. Both must agree on the count.
	sealLen := footerOff - x.dataEnd
	if sealLen < 6 || sealLen > 32 {
		return nil, fmt.Errorf("%w: seal bounds", ErrCorrupt)
	}
	seal := make([]byte, sealLen)
	if _, err := r.f.ReadAt(seal, x.dataEnd); err != nil {
		return nil, fmt.Errorf("%w: seal read: %v", ErrCorrupt, err)
	}
	sealed := false
	n, err := walkRecords(seal, func(rec Record) error {
		if rec.Op != opSeal || rec.Count != uint64(x.count) {
			return fmt.Errorf("%w: footer/seal mismatch", ErrCorrupt)
		}
		sealed = true
		return nil
	})
	if err != nil || !sealed || n != len(seal) {
		if err == nil {
			err = fmt.Errorf("%w: seal record", ErrCorrupt)
		}
		return nil, err
	}
	return x, nil
}

// rebuildIndex scans every record from the top, verifying frames and
// checksums, and rebuilds the sparse index and bloom filters the footer
// would have held. Bytes after the seal (the damaged footer) are never
// examined. This is the recovery guarantee for the read path: a torn
// footer costs one full-segment scan at open, never a wrong answer.
func (r *SegmentReader) rebuildIndex() (*segIndex, error) {
	x := &segIndex{}
	var keyHashes, idHashes []uint64
	sealed := false
	err := r.walk(r.recStart, r.size, func(off int64, body []byte, c *transport.Cursor) (bool, error) {
		c.Reset(body)
		rec, err := ParseRecord(c)
		if err != nil {
			return false, err
		}
		switch rec.Op {
		case opSeal:
			if rec.Count != uint64(x.count) {
				return false, fmt.Errorf("%w: seal count %d, have %d records", ErrCorrupt, rec.Count, x.count)
			}
			sealed = true
			x.dataEnd = off
			return true, nil
		case OpPut:
			if x.count%segIndexEvery == 0 {
				x.entries = append(x.entries, indexEntry{id: rec.ID, off: off})
			}
			keyHashes = append(keyHashes, hashIDKey(uint32(rec.ID), rec.Part.Key()))
			idHashes = append(idHashes, hashID(uint32(rec.ID)))
			x.count++
			return false, nil
		default:
			return false, fmt.Errorf("%w: op %d in segment", ErrCorrupt, rec.Op)
		}
	})
	if err != nil {
		return nil, err
	}
	if !sealed {
		return nil, fmt.Errorf("%w: unsealed segment", ErrCorrupt)
	}
	x.keys = newBloom(x.count)
	for _, h := range keyHashes {
		x.keys.add(h)
	}
	x.ids = newBloom(x.count)
	for _, h := range idHashes {
		x.ids.add(h)
	}
	return x, nil
}

// walk parses framed records in [from, end), calling fn with each
// record's absolute offset, checksum-verified body, and the walker's
// reusable cursor. fn returning stop=true ends the walk cleanly. The
// body (and anything the cursor views into it) is only valid during the
// call.
func (r *SegmentReader) walk(from, end int64, fn func(off int64, body []byte, c *transport.Cursor) (bool, error)) error {
	w := walkerPool.Get().(*segWalker)
	defer walkerPool.Put(w)

	base, n, i := from, 0, 0 // window [base, base+n), parse offset i
	fill := func(at int64, need int) error {
		if need > len(w.buf) {
			w.buf = make([]byte, need+segChunk)
		}
		want := int64(len(w.buf))
		if at+want > end {
			want = end - at
		}
		m, err := r.f.ReadAt(w.buf[:want], at)
		metSegReadBytes.Add(uint64(m))
		if int64(m) < want {
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("wal: segment read at %d: %w", at, err)
		}
		base, n, i = at, int(want), 0
		return nil
	}

	for {
		abs := base + int64(i)
		if abs >= end {
			return nil
		}
		length, ln := binary.Uvarint(w.buf[i:n])
		if ln == 0 { // length prefix incomplete in window
			if base+int64(n) >= end {
				return fmt.Errorf("%w: torn length prefix", ErrCorrupt)
			}
			if err := fill(abs, 2*binary.MaxVarintLen64); err != nil {
				return err
			}
			continue
		}
		if ln < 0 || length < 5 || length > MaxRecord {
			return fmt.Errorf("%w: record length %d", ErrCorrupt, length)
		}
		total := ln + int(length)
		if abs+int64(total) > end {
			return fmt.Errorf("%w: torn record", ErrCorrupt)
		}
		if i+total > n {
			if err := fill(abs, total); err != nil {
				return err
			}
			continue
		}
		frame := w.buf[i+ln : i+total]
		sum := uint32(frame[0]) | uint32(frame[1])<<8 | uint32(frame[2])<<16 | uint32(frame[3])<<24
		body := frame[4:]
		if crc32.Checksum(body, crcTable) != sum {
			return fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		}
		stop, err := fn(abs, body, w.c)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
		i += total
	}
}

// Len returns the number of put records in the segment.
func (r *SegmentReader) Len() int { return r.idx.count }

// Seq returns the segment's sequence number.
func (r *SegmentReader) Seq() uint64 { return r.seq }

// Rebuilt reports whether the footer was damaged and the index had to be
// rebuilt by a full scan.
func (r *SegmentReader) Rebuilt() bool { return r.rebuilt }

// MayContain reports whether bucket id may have records here. False is
// definitive (and costs no I/O); true may be a bloom false positive.
func (r *SegmentReader) MayContain(id store.ID) bool {
	if !r.idx.ids.has(hashID(uint32(id))) {
		metSegBloomSkip.Inc()
		return false
	}
	return true
}

// MayContainKey is MayContain for one descriptor identity.
func (r *SegmentReader) MayContainKey(id store.ID, key string) bool {
	if !r.idx.keys.has(hashIDKey(uint32(id), key)) {
		metSegBloomSkip.Inc()
		return false
	}
	return true
}

// Get returns the descriptor with the given identity key in bucket id,
// if the segment holds one. The common miss (bloom negative) does no
// I/O; a present key costs one index probe plus a short bounded walk.
func (r *SegmentReader) Get(id store.ID, key string) (store.Partition, bool, error) {
	var p store.Partition
	ok, err := r.find(id, key, &p)
	return p, ok, err
}

// find is Get with an optional materialization target: with out == nil
// it only locates the record, allocating nothing (the benchmarked
// point-read hot path).
func (r *SegmentReader) find(id store.ID, key string, out *store.Partition) (bool, error) {
	if !r.idx.keys.has(hashIDKey(uint32(id), key)) {
		metSegBloomSkip.Inc()
		return false, nil
	}
	metSegReads.Inc()
	found := false
	err := r.walk(r.idx.seek(id, r.recStart), r.idx.dataEnd, func(off int64, body []byte, c *transport.Cursor) (bool, error) {
		c.Reset(body)
		if op := c.Uvarint(); op != uint64(OpPut) {
			return false, fmt.Errorf("%w: op %d in segment", ErrCorrupt, op)
		}
		recID := store.ID(c.Uvarint())
		if c.Err != nil {
			return false, fmt.Errorf("%w: truncated body", ErrCorrupt)
		}
		if recID < id {
			return false, nil
		}
		if recID > id {
			return true, nil // sorted: past the bucket, key absent
		}
		rel, attr := c.Bytes(), c.Bytes()
		lo, hi := c.Varint(), c.Varint()
		if c.Err != nil {
			return false, fmt.Errorf("%w: truncated body", ErrCorrupt)
		}
		if !keyMatches(key, rel, attr, lo, hi) {
			return false, nil
		}
		found = true
		if out != nil {
			c.Reset(body)
			rec, err := ParseRecord(c)
			if err != nil {
				return false, err
			}
			*out = rec.Part
		}
		return true, nil
	})
	if err != nil {
		metSegReadErrs.Inc()
		return false, err
	}
	return found, nil
}

// keyMatches reports whether the descriptor fields (as raw views into
// the record body) spell the identity key "rel.attr[lo,hi]" — comparing
// in place, without building the key string.
func keyMatches(key string, rel, attr []byte, lo, hi int64) bool {
	n := len(rel)
	if len(key) <= n || key[n] != '.' || key[:n] != string(rel) {
		return false
	}
	rest := key[n+1:]
	m := len(attr)
	if len(rest) <= m || rest[:m] != string(attr) {
		return false
	}
	var scratch [48]byte
	s := append(scratch[:0], '[')
	s = strconv.AppendInt(s, lo, 10)
	s = append(s, ',')
	s = strconv.AppendInt(s, hi, 10)
	s = append(s, ']')
	return rest[m:] == string(s)
}

// Bucket calls fn for every descriptor in bucket id, in key order.
func (r *SegmentReader) Bucket(id store.ID, fn func(store.Partition) error) error {
	if !r.idx.ids.has(hashID(uint32(id))) {
		metSegBloomSkip.Inc()
		return nil
	}
	metSegReads.Inc()
	err := r.walk(r.idx.seek(id, r.recStart), r.idx.dataEnd, func(off int64, body []byte, c *transport.Cursor) (bool, error) {
		c.Reset(body)
		rec, err := ParseRecord(c)
		if err != nil {
			return false, err
		}
		if rec.ID < id {
			return false, nil
		}
		if rec.ID > id {
			return true, nil
		}
		return false, fn(rec.Part)
	})
	if err != nil {
		metSegReadErrs.Inc()
	}
	return err
}

// Scan calls fn for every descriptor in the segment, in (id, key) order.
func (r *SegmentReader) Scan(fn func(store.ID, store.Partition) error) error {
	metSegReads.Inc()
	err := r.walk(r.recStart, r.idx.dataEnd, func(off int64, body []byte, c *transport.Cursor) (bool, error) {
		c.Reset(body)
		rec, err := ParseRecord(c)
		if err != nil {
			return false, err
		}
		return false, fn(rec.ID, rec.Part)
	})
	if err != nil {
		metSegReadErrs.Inc()
	}
	return err
}

// ScanArc calls fn for every descriptor whose bucket lies on the ring
// arc (from, to] (from == to means the whole circle), using the index to
// skip to the arc's start. A wrapping arc is two bounded walks.
func (r *SegmentReader) ScanArc(from, to store.ID, fn func(store.ID, store.Partition) error) error {
	if from == to {
		return r.Scan(fn)
	}
	if from < to {
		return r.scanIDRange(from, to, fn)
	}
	// Wrapping arc: (from, maxID] then [0, to].
	if err := r.scanIDRange(from, ^store.ID(0), fn); err != nil {
		return err
	}
	return r.scanIDRange0(to, fn)
}

// scanIDRange walks ids in (fromExcl, toIncl], fromExcl < toIncl assumed
// (or toIncl == maxID).
func (r *SegmentReader) scanIDRange(fromExcl, toIncl store.ID, fn func(store.ID, store.Partition) error) error {
	metSegReads.Inc()
	err := r.walk(r.idx.seek(fromExcl, r.recStart), r.idx.dataEnd, func(off int64, body []byte, c *transport.Cursor) (bool, error) {
		c.Reset(body)
		rec, err := ParseRecord(c)
		if err != nil {
			return false, err
		}
		if rec.ID <= fromExcl {
			return false, nil
		}
		if rec.ID > toIncl {
			return true, nil
		}
		return false, fn(rec.ID, rec.Part)
	})
	if err != nil {
		metSegReadErrs.Inc()
	}
	return err
}

// scanIDRange0 walks ids in [0, toIncl].
func (r *SegmentReader) scanIDRange0(toIncl store.ID, fn func(store.ID, store.Partition) error) error {
	metSegReads.Inc()
	err := r.walk(r.recStart, r.idx.dataEnd, func(off int64, body []byte, c *transport.Cursor) (bool, error) {
		c.Reset(body)
		rec, err := ParseRecord(c)
		if err != nil {
			return false, err
		}
		if rec.ID > toIncl {
			return true, nil
		}
		return false, fn(rec.ID, rec.Part)
	})
	if err != nil {
		metSegReadErrs.Inc()
	}
	return err
}

// Close releases the underlying file. Reads after Close fail.
func (r *SegmentReader) Close() error { return r.f.Close() }
