package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"p2prange/internal/store"
)

// Segment read-path suite: the reader must serve exactly what loadSegment
// would materialize, from any entry point (point read, bucket walk, arc
// scan), and footer damage at any byte offset must degrade to a full-scan
// rebuild — slower, never wrong.

// seedSegment builds one sealed segment holding n descriptors spread over
// the 32-bit id space (plus a few multi-descriptor buckets) and returns
// the directory and the exact expected content.
func seedSegment(tb testing.TB, n int) (string, map[store.ID][]store.Partition) {
	tb.Helper()
	dir := tb.TempDir()
	st := store.New()
	lg, _, err := Open(Options{Dir: dir}, StoreRestorer(st))
	if err != nil {
		tb.Fatalf("Open: %v", err)
	}
	st.SetJournal(lg)
	want := make(map[store.ID][]store.Partition)
	for i := 0; i < n; i++ {
		id := store.ID(uint32(i) * 2654435761) // Knuth spread over the ring
		p := testPart(i)
		st.Put(id, p)
		want[id] = append(want[id], p)
		if i%7 == 0 {
			q := testPart(100000 + i)
			st.Put(id, q)
			want[id] = append(want[id], q)
		}
	}
	if err := lg.Commit(); err != nil {
		tb.Fatalf("Commit: %v", err)
	}
	if err := lg.Checkpoint(); err != nil {
		tb.Fatalf("Checkpoint: %v", err)
	}
	lg.Crash()
	for id := range want {
		b := want[id]
		sort.Slice(b, func(i, j int) bool { return b[i].Key() < b[j].Key() })
	}
	return dir, want
}

// scanAll collects the reader's full content as a map for comparison.
func scanAll(tb testing.TB, r *SegmentReader) map[store.ID][]store.Partition {
	tb.Helper()
	got := make(map[store.ID][]store.Partition)
	if err := r.Scan(func(id store.ID, p store.Partition) error {
		got[id] = append(got[id], p)
		return nil
	}); err != nil {
		tb.Fatalf("Scan: %v", err)
	}
	return got
}

func TestSegmentReaderMatchesSeededContent(t *testing.T) {
	dir, want := seedSegment(t, 40)
	r, err := OpenSegmentReader(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Rebuilt() {
		t.Error("pristine segment reported a rebuilt index")
	}
	total := 0
	for _, b := range want {
		total += len(b)
	}
	if r.Len() != total {
		t.Errorf("Len = %d, want %d", r.Len(), total)
	}

	if got := scanAll(t, r); !reflect.DeepEqual(got, want) {
		t.Errorf("Scan mismatch: %d buckets, want %d", len(got), len(want))
	}

	for id, bucket := range want {
		var got []store.Partition
		if err := r.Bucket(id, func(p store.Partition) error {
			got = append(got, p)
			return nil
		}); err != nil {
			t.Fatalf("Bucket(%08x): %v", id, err)
		}
		if !reflect.DeepEqual(got, bucket) {
			t.Errorf("Bucket(%08x) = %v, want %v", id, got, bucket)
		}
		for _, p := range bucket {
			if !r.MayContainKey(id, p.Key()) {
				t.Errorf("MayContainKey(%08x, %s) = false for a present key", id, p.Key())
			}
			q, ok, err := r.Get(id, p.Key())
			if err != nil || !ok {
				t.Fatalf("Get(%08x, %s) = %v, %v", id, p.Key(), ok, err)
			}
			if q != p {
				t.Errorf("Get(%08x, %s) = %+v, want %+v", id, p.Key(), q, p)
			}
		}
		if _, ok, err := r.Get(id, "Nope.x[1,2]"); err != nil || ok {
			t.Errorf("Get of absent key in present bucket = %v, %v", ok, err)
		}
	}
}

func TestSegmentReaderScanArc(t *testing.T) {
	dir, want := seedSegment(t, 40)
	r, err := OpenSegmentReader(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var ids []store.ID
	for id := range want {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	arcs := [][2]store.ID{
		{0, 0},                    // whole circle (from == to on an unoccupied id)
		{ids[3], ids[3]},          // whole circle from an occupied id
		{ids[2], ids[len(ids)-2]}, // plain ascending arc
		{ids[len(ids)-2], ids[2]}, // wrapping arc
		{ids[5], ids[5] + 1},      // near-empty arc
		{^store.ID(0) - 1, 1},     // wrap across zero
		{ids[0], ids[0] - 1},      // everything except the first id
	}
	for _, arc := range arcs {
		from, to := arc[0], arc[1]
		exp := make(map[store.ID][]store.Partition)
		for id, b := range want {
			if from == to || betweenRightInclTest(from, to, id) {
				exp[id] = b
			}
		}
		got := make(map[store.ID][]store.Partition)
		if err := r.ScanArc(from, to, func(id store.ID, p store.Partition) error {
			got[id] = append(got[id], p)
			return nil
		}); err != nil {
			t.Fatalf("ScanArc(%08x, %08x): %v", from, to, err)
		}
		if len(got) == 0 {
			got = map[store.ID][]store.Partition{}
		}
		if len(exp) == 0 {
			exp = map[store.ID][]store.Partition{}
		}
		if !reflect.DeepEqual(got, exp) {
			t.Errorf("ScanArc(%08x, %08x): %d buckets, want %d", from, to, len(got), len(exp))
		}
	}
}

// betweenRightInclTest mirrors chord arc membership (from, to].
func betweenRightInclTest(a, b, x store.ID) bool {
	if x == b {
		return true
	}
	if a < b {
		return a < x && x < b
	}
	return x > a || x < b
}

// segmentGeometry reads the pristine segment's byte layout: where the
// data region ends (the seal record's offset) and where the footer
// begins (the seal record's end).
func segmentGeometry(t *testing.T, dir string) (path string, pristine []byte, dataEnd, sealEnd int64) {
	t.Helper()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("want one segment, got %v", segs)
	}
	path = segs[0]
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenSegmentReader(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	dataEnd = r.idx.dataEnd
	r.Close()
	sealEnd = int64(binary.LittleEndian.Uint64(pristine[len(pristine)-segTrailerLen:]))
	if dataEnd <= 0 || sealEnd <= dataEnd || sealEnd >= int64(len(pristine)) {
		t.Fatalf("implausible geometry: dataEnd=%d sealEnd=%d size=%d", dataEnd, sealEnd, len(pristine))
	}
	return path, pristine, dataEnd, sealEnd
}

// TestSegmentFooterTruncateEveryOffset cuts the segment at every byte
// offset from the seal record to EOF. A cut inside the seal must reject
// the segment (the commit point is gone); a cut at or past the seal's end
// only damages the footer, so the reader must open via a full-scan
// rebuild and answer byte-identically. No cut may ever yield a wrong
// answer.
func TestSegmentFooterTruncateEveryOffset(t *testing.T) {
	dir, want := seedSegment(t, 30)
	path, pristine, dataEnd, sealEnd := segmentGeometry(t, dir)

	for cut := dataEnd; cut < int64(len(pristine)); cut++ {
		workDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(workDir, filepath.Base(path)), pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenSegmentReader(workDir, 1)
		if cut < sealEnd {
			if err == nil {
				r.Close()
				t.Fatalf("cut at %d (inside seal): reader accepted an unsealed segment", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut at %d (footer only): open failed: %v", cut, err)
		}
		if !r.Rebuilt() {
			t.Errorf("cut at %d: damaged footer not rebuilt", cut)
		}
		if got := scanAll(t, r); !reflect.DeepEqual(got, want) {
			t.Fatalf("cut at %d: rebuilt reader content differs", cut)
		}
		r.Close()
	}
}

// TestSegmentFooterBitFlipEveryOffset flips one byte at every offset from
// the seal record to EOF. Flips inside the seal break the commit point
// (the segment must be rejected); flips in the footer or trailer must
// fall back to the rebuild and answer byte-identically.
func TestSegmentFooterBitFlipEveryOffset(t *testing.T) {
	dir, want := seedSegment(t, 30)
	path, pristine, dataEnd, sealEnd := segmentGeometry(t, dir)

	for pos := dataEnd; pos < int64(len(pristine)); pos++ {
		workDir := t.TempDir()
		mut := append([]byte(nil), pristine...)
		mut[pos] ^= 0x41
		if err := os.WriteFile(filepath.Join(workDir, filepath.Base(path)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenSegmentReader(workDir, 1)
		if pos < sealEnd {
			if err == nil {
				r.Close()
				t.Fatalf("flip at %d (inside seal): reader accepted a damaged seal", pos)
			}
			continue
		}
		if err != nil {
			t.Fatalf("flip at %d (footer only): open failed: %v", pos, err)
		}
		if !r.Rebuilt() {
			t.Errorf("flip at %d: damaged footer not rebuilt", pos)
		}
		if got := scanAll(t, r); !reflect.DeepEqual(got, want) {
			t.Fatalf("flip at %d: rebuilt reader content differs", pos)
		}
		r.Close()
	}
}

// TestSegmentRebuiltIndexMatchesFooter opens the same segment via the
// footer and via a forced rebuild and compares the indexes they serve
// from: same count, same seal offset, same sparse entries.
func TestSegmentRebuiltIndexMatchesFooter(t *testing.T) {
	dir, _ := seedSegment(t, 200) // > segIndexEvery so the index has several entries
	r, err := OpenSegmentReader(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rebuilt, err := r.rebuildIndex()
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.count != r.idx.count || rebuilt.dataEnd != r.idx.dataEnd {
		t.Errorf("rebuild: count/dataEnd %d/%d, footer %d/%d",
			rebuilt.count, rebuilt.dataEnd, r.idx.count, r.idx.dataEnd)
	}
	if !reflect.DeepEqual(rebuilt.entries, r.idx.entries) {
		t.Errorf("rebuild: %d index entries, footer %d", len(rebuilt.entries), len(r.idx.entries))
	}
}

func BenchmarkSegmentProbe(b *testing.B) {
	dir, want := seedSegment(b, 2000)
	r, err := OpenSegmentReader(dir, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	var id store.ID
	var key string
	for i, bucket := range want {
		id, key = i, bucket[0].Key()
		break
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := r.find(id, key, nil)
		if err != nil || !ok {
			b.Fatalf("probe: %v, %v", ok, err)
		}
	}
}

func BenchmarkSegmentProbeMiss(b *testing.B) {
	dir, _ := seedSegment(b, 2000)
	r, err := OpenSegmentReader(dir, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := r.find(0xdeadbeef, "Absent.x[1,2]", nil)
		if err != nil || ok {
			b.Fatalf("miss probe: %v, %v", ok, err)
		}
	}
}

func BenchmarkSegmentGetIndexed(b *testing.B) {
	benchmarkSegmentGet(b, true)
}

func BenchmarkSegmentGetFullScan(b *testing.B) {
	benchmarkSegmentGet(b, false)
}

// benchmarkSegmentGet measures a materializing point read with and
// without the sparse index (the without case walks from the top of the
// file, what every read cost before the footer existed).
func benchmarkSegmentGet(b *testing.B, indexed bool) {
	dir, want := seedSegment(b, 2000)
	r, err := OpenSegmentReader(dir, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	if !indexed {
		stripped := *r.idx
		stripped.entries = nil
		r = &SegmentReader{f: r.f, path: r.path, seq: r.seq, size: r.size, recStart: r.recStart, idx: &stripped}
	}
	// Probe the id at the 90th percentile of the file so the unindexed
	// walk pays a realistic scan distance.
	var ids []store.ID
	for id := range want {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	id := ids[len(ids)*9/10]
	key := want[id][0].Key()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := r.Get(id, key)
		if err != nil || !ok {
			b.Fatalf("get: %v, %v", ok, err)
		}
	}
}
