package wal

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"p2prange/internal/rangeset"
	"p2prange/internal/store"
)

// End-to-end read-through suite: a bounded tiered store over real WAL
// segments must answer byte-identically to an unbounded in-memory shadow
// fed the same operations, across folds, capacity evictions, and reboots.

// openTiered opens (or recovers) a bounded read-through store in dir.
func openTiered(t *testing.T, dir string, capacity, compactEvery int) (*store.Store, *Log, Recovery) {
	t.Helper()
	st := store.NewBounded(capacity)
	lg, rec, err := Open(Options{
		Dir:          dir,
		CompactEvery: compactEvery,
		ReadThrough:  true,
		OnSegment: func(r *SegmentReader) error {
			if r == nil {
				st.SetSegments(nil)
			} else {
				st.SetSegments(r)
			}
			return nil
		},
		OnSwap: func(r *SegmentReader, upto uint64) { st.SwapSegments(r, upto) },
	}, StoreRestorer(st))
	if err != nil {
		t.Fatalf("Open tiered: %v", err)
	}
	st.SetJournal(lg)
	return st, lg, rec
}

// dumpStore collects a store's full logical content.
func dumpStore(s *store.Store) map[store.ID][]store.Partition {
	out := make(map[store.ID][]store.Partition)
	for _, id := range s.IDs() {
		b := s.Bucket(id)
		sort.Slice(b, func(i, j int) bool { return b[i].Key() < b[j].Key() })
		out[id] = b
	}
	return out
}

// assertSameAnswers proves the tiered store and the shadow are logically
// identical: same content, and the same answer for every probe shape.
func assertSameAnswers(t *testing.T, tag string, tiered, shadow *store.Store, rng *rand.Rand) {
	t.Helper()
	if tiered.Len() != shadow.Len() {
		t.Fatalf("%s: Len %d, shadow %d", tag, tiered.Len(), shadow.Len())
	}
	got, want := dumpStore(tiered), dumpStore(shadow)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: content diverged: %d buckets vs %d", tag, len(got), len(want))
	}
	for id, bucket := range want {
		for _, p := range bucket {
			if q, ok := tiered.Get(id, p.Key()); !ok || q != p {
				t.Fatalf("%s: Get(%08x, %s) = %+v, %v; want %+v", tag, id, p.Key(), q, ok, p)
			}
		}
	}
	for trial := 0; trial < 40; trial++ {
		id := store.ID(rng.Intn(24))
		q := rangeset.Range{Lo: int64(rng.Intn(300)), Hi: int64(rng.Intn(300) + 300)}
		for _, measure := range []store.Measure{store.MatchJaccard, store.MatchContainment} {
			gm, gok := tiered.FindBest(id, "R", "a", q, measure)
			wm, wok := shadow.FindBest(id, "R", "a", q, measure)
			if gok != wok || (gok && gm != wm) {
				t.Fatalf("%s: FindBest(%d, %v, %v) = %+v, %v; shadow %+v, %v",
					tag, id, q, measure, gm, gok, wm, wok)
			}
			// Anywhere probes tie-break to a deterministic (score, key);
			// the winning copy's replication metadata may come from any
			// bucket holding the key, so compare only the guaranteed part.
			gm, gok = tiered.FindBestAnywhere("R", "a", q, measure)
			wm, wok = shadow.FindBestAnywhere("R", "a", q, measure)
			if gok != wok || (gok && (gm.Score != wm.Score || gm.Partition.Key() != wm.Partition.Key())) {
				t.Fatalf("%s: FindBestAnywhere(%v, %v) = %+v, %v; shadow %+v, %v",
					tag, q, measure, gm, gok, wm, wok)
			}
		}
	}
	if d1, d2 := tiered.Digest(nil), shadow.Digest(nil); !reflect.DeepEqual(d1, d2) {
		t.Fatalf("%s: digests diverged", tag)
	}
}

// TestTieredStoreMatchesUnbounded drives random mutations through a
// cap-limited read-through store and an unbounded shadow, across several
// reboots with aggressive compaction, asserting equal answers throughout.
// This is the acceptance property: a peer whose memory holds a fraction
// of the working set answers exactly like one holding all of it.
func TestTieredStoreMatchesUnbounded(t *testing.T) {
	for _, capacity := range []int{1, 4, 16} {
		capacity := capacity
		t.Run(fmt.Sprintf("cap%d", capacity), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(capacity)))
			dir := t.TempDir()
			shadow := store.New()

			for boot := 0; boot < 3; boot++ {
				st, lg, _ := openTiered(t, dir, capacity, 11)
				assertSameAnswers(t, fmt.Sprintf("cap%d boot%d recovery", capacity, boot), st, shadow, rng)
				for op := 0; op < 50; op++ {
					switch {
					case rng.Intn(5) == 0 && shadow.Len() > 0:
						ids := shadow.IDs()
						id := ids[rng.Intn(len(ids))]
						b := shadow.Bucket(id)
						key := b[rng.Intn(len(b))].Key()
						g, w := st.Delete(id, key), shadow.Delete(id, key)
						if g != w {
							t.Fatalf("Delete(%d, %s) = %v, shadow %v", id, key, g, w)
						}
					case rng.Intn(12) == 0:
						from, to := store.ID(rng.Intn(24)), store.ID(rng.Intn(24))
						got, want := st.ExtractArc(from, to), shadow.ExtractArc(from, to)
						for id := range got {
							sort.Slice(got[id], func(i, j int) bool { return got[id][i].Key() < got[id][j].Key() })
						}
						for id := range want {
							sort.Slice(want[id], func(i, j int) bool { return want[id][i].Key() < want[id][j].Key() })
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("ExtractArc(%d, %d) diverged: %d vs %d buckets", from, to, len(got), len(want))
						}
					default:
						id := store.ID(rng.Intn(24))
						p := testPart(rng.Intn(60))
						p.Version = uint64(rng.Intn(4))
						g, w := st.Put(id, p), shadow.Put(id, p)
						if g != w {
							t.Fatalf("Put(%d, %s v%d) = %v, shadow %v", id, p.Key(), p.Version, g, w)
						}
					}
					if err := lg.Commit(); err != nil {
						t.Fatalf("Commit: %v", err)
					}
					if op%17 == 0 {
						assertSameAnswers(t, fmt.Sprintf("cap%d boot%d op%d", capacity, boot, op), st, shadow, rng)
					}
				}
				assertSameAnswers(t, fmt.Sprintf("cap%d boot%d end", capacity, boot), st, shadow, rng)
				if st.MemLen() > capacity+1 {
					// Pins may overshoot briefly between folds; a full fold ran
					// every 11 records, so the overshoot must stay small.
					t.Logf("cap%d boot%d: resident %d (cap %d)", capacity, boot, st.MemLen(), capacity)
				}
				if boot%2 == 0 {
					lg.Crash()
				} else if err := lg.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
			}
		})
	}
}

// TestTieredRecoveryReadThrough proves a reboot with a tiny cache serves
// the full pre-crash working set from the segment: Len equals the seeded
// count while MemLen stays at the cap, and every descriptor is readable.
func TestTieredRecoveryReadThrough(t *testing.T) {
	dir := t.TempDir()
	const n = 64
	st, lg, _ := openTiered(t, dir, n, 0) // ample cap while seeding
	for i := 0; i < n; i++ {
		st.Put(store.ID(i%8), testPart(i))
	}
	if err := lg.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	lg.Crash()

	const cap = n / 10
	st2, lg2, rec := openTiered(t, dir, cap, 0)
	defer lg2.Close()
	if !rec.ReadThrough || rec.SegmentSeq == 0 {
		t.Fatalf("recovery not read-through: %+v", rec)
	}
	if st2.Len() != n {
		t.Fatalf("Len = %d, want %d", st2.Len(), n)
	}
	if st2.MemLen() != 0 {
		t.Fatalf("MemLen = %d after segment-only recovery, want 0", st2.MemLen())
	}
	for i := 0; i < n; i++ {
		p := testPart(i)
		got, ok := st2.Get(store.ID(i%8), p.Key())
		if !ok || got != p {
			t.Fatalf("Get(%d, %s) = %+v, %v", i%8, p.Key(), got, ok)
		}
	}
	if st2.MemLen() > cap {
		t.Errorf("MemLen = %d exceeds cap %d after reads", st2.MemLen(), cap)
	}
}
