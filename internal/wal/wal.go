package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"p2prange/internal/metrics"
	"p2prange/internal/store"
)

var (
	metAppends    = metrics.Default.Counter("wal.appends")
	metCommits    = metrics.Default.Counter("wal.commits")
	metFsyncs     = metrics.Default.Counter("wal.fsyncs")
	metFlushBytes = metrics.Default.Counter("wal.flush_bytes")
	metCompacts   = metrics.Default.Counter("wal.compactions")
	metCompactErr = metrics.Default.Counter("wal.compact_errors")
	metFolded     = metrics.Default.Counter("wal.folded_records")
	metReplayed   = metrics.Default.Counter("wal.replayed_records")
	metTornTails  = metrics.Default.Counter("wal.torn_tails")
	metRecovers   = metrics.Default.Counter("wal.recoveries")
)

// FsyncMode selects the durability barrier run on commit.
type FsyncMode int

const (
	// FsyncAlways fsyncs before acknowledging a commit. One fsync may
	// cover many writers (group commit), but no acknowledged write can
	// be lost to a crash.
	FsyncAlways FsyncMode = iota
	// FsyncOff writes without syncing: the OS page cache decides when
	// bytes reach disk. Survives process crashes (the kernel still holds
	// the pages) but not machine crashes. For benchmarks and tests.
	FsyncOff
)

// ParseFsyncMode parses the -fsync flag values "always" and "off".
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync mode %q (want always or off)", s)
}

// String names the mode as the -fsync flag spells it.
func (m FsyncMode) String() string {
	if m == FsyncOff {
		return "off"
	}
	return "always"
}

// DefaultCompactEvery is the fold threshold when Options.CompactEvery
// is zero: once this many records accumulate in WAL files, the next
// commit folds them into a segment.
const DefaultCompactEvery = 4096

// Options configures a durable log.
type Options struct {
	// Dir is the peer's data directory, created if absent. One peer per
	// directory; two live peers sharing one corrupt each other.
	Dir string
	// Fsync is the commit barrier mode (default FsyncAlways).
	Fsync FsyncMode
	// CompactEvery folds WAL files into a segment once that many records
	// accumulate. Zero means DefaultCompactEvery; negative disables
	// automatic compaction (Checkpoint still compacts on demand).
	CompactEvery int
	// ReadThrough keeps the newest sealed segment open behind a
	// SegmentReader instead of loading its records into memory at boot:
	// Open skips applying segment records (only WAL records are
	// replayed), hands the reader to OnSegment, and every compaction
	// opens the new segment and announces it via OnSwap. The store serves
	// misses from the reader — the disk tier of a bounded store.
	ReadThrough bool
	// OnSegment is called once during Open, after segment selection and
	// before WAL replay, with the boot segment's reader (nil when no
	// valid segment exists). ReadThrough only. A non-nil error aborts
	// Open. Use it to attach the reader to the store so replayed WAL
	// records merge against the disk tier.
	OnSegment func(*SegmentReader) error
	// OnSwap is called after each compaction with the new segment's
	// reader and the newest WAL sequence it folded; the previous reader
	// is closed after OnSwap returns. ReadThrough only. It runs on the
	// compaction goroutine, holding no wal locks.
	OnSwap func(*SegmentReader, uint64)
	// ShipRetain caps the bytes of folded WAL files kept on disk for
	// pinned follower cursors (log shipping). Zero means
	// DefaultShipRetain; negative retains nothing (folded files are
	// deleted eagerly, the pre-shipping behavior).
	ShipRetain int64
	// OnSeal is called after each successful compaction with the new
	// segment's sequence number, on the compaction goroutine, holding no
	// wal locks. Used to mirror sealed segments into a backup directory.
	OnSeal func(seq uint64)
	// OnRetainDrop is called when a fold (or the ShipRetain budget)
	// deleted WAL files a follower cursor still pinned, forcing that
	// follower onto the snapshot path. Compaction goroutine, no locks.
	OnRetainDrop func(follower string, c Cursor)
}

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: closed")

// Log is one peer's durable journal: an append-only WAL for mutations
// plus immutable segments produced by compaction. It implements
// store.Journal, so attaching it to a store makes every mutation
// write-through.
//
// The append methods (Put, Evict, DropArc) only buffer in memory — the
// store calls them under its write lock, so WAL order always equals
// apply order, and they must never block on IO. Commit is the
// durability barrier: it writes and fsyncs everything buffered so far,
// batching concurrent committers behind a single fsync (the
// first-waiter-becomes-flusher idiom of transport's groupWriter).
type Log struct {
	dir          string
	fsync        FsyncMode
	compactEvery int // 0 = disabled
	readThrough  bool
	onSwap       func(*SegmentReader, uint64) // Options.OnSwap
	retainBytes  int64                        // Options.ShipRetain (resolved)
	onSeal       func(uint64)                 // Options.OnSeal
	onRetainDrop func(string, Cursor)         // Options.OnRetainDrop

	mu         sync.Mutex
	cond       *sync.Cond
	buf        []byte // framed records appended but not yet handed to the flusher
	spare      []byte // recycled flush buffer
	appended   uint64 // records appended (commit tickets)
	durable    uint64 // records known flushed (and fsynced, in FsyncAlways)
	flushing   bool   // a flusher is writing outside the lock
	compacting bool   // a compaction is running outside the lock
	err        error  // latched IO error; the log is read-only garbage after
	closed     bool
	f          *os.File          // active WAL file
	seq        uint64            // active WAL sequence number
	segSeq     uint64            // newest sealed segment (0 = none)
	reader     *SegmentReader    // read-through reader over segSeq (ReadThrough only)
	sinceFold  int               // records in WAL files not yet folded into a segment
	compactErr string            // last compaction failure, for Stats
	durableOff int64             // committed byte size of the active WAL file
	pins       map[string]Cursor // follower retention reservations (cursor.go)
	retained   map[uint64]int64  // folded WAL files kept for pins: seq -> size
}

// Put journals a descriptor admission or in-place version upgrade.
// Part of store.Journal; called under the store's write lock.
func (l *Log) Put(id store.ID, p store.Partition) {
	l.append(&Record{Op: OpPut, ID: id, Part: p})
}

// Evict journals a descriptor removal (capacity eviction or explicit
// delete). Part of store.Journal; called under the store's write lock.
func (l *Log) Evict(id store.ID, key string) {
	l.append(&Record{Op: OpEvict, ID: id, Key: key})
}

// DropArc journals the removal of every bucket on the ring arc
// (from, to]. Part of store.Journal; called under the store's write
// lock.
func (l *Log) DropArc(from, to store.ID) {
	l.append(&Record{Op: OpDropArc, From: from, To: to})
}

// Epoch returns the active WAL file's sequence number. Records appended
// now land in this file or a later one, so a fold up to sequence S
// covers every record appended while Epoch() <= S. The tiered store
// stamps its pins and tombstones with this to know when a segment swap
// has absorbed them.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

func (l *Log) append(r *Record) {
	l.mu.Lock()
	if !l.closed {
		l.buf = appendFramed(l.buf, r)
		l.appended++
		l.sinceFold++
	}
	l.mu.Unlock()
	metAppends.Inc()
}

// Commit blocks until every record appended before the call is durable,
// then reports the log's health. A non-nil return means durability was
// NOT achieved — the caller must not acknowledge the write. Concurrent
// commits coalesce: whichever caller finds no flush in progress becomes
// the flusher and its single write+fsync covers everyone waiting.
func (l *Log) Commit() error {
	metCommits.Inc()
	l.mu.Lock()
	target := l.appended
	for l.err == nil && l.durable < target {
		if !l.flushing {
			l.flushLocked()
			continue
		}
		l.cond.Wait()
	}
	err := l.err
	fold := err == nil && l.compactEvery > 0 && l.sinceFold >= l.compactEvery && !l.compacting
	if fold {
		l.compacting = true
	}
	l.mu.Unlock()
	if fold {
		l.runCompaction()
	}
	return err
}

// flushLocked swaps the append buffer out, writes and (in FsyncAlways)
// fsyncs it with the lock released, then publishes the new durable
// ticket and wakes all waiters. Caller holds l.mu; it is reacquired
// before returning.
func (l *Log) flushLocked() {
	l.flushing = true
	buf := l.buf
	l.buf = l.spare[:0]
	l.spare = nil
	target := l.appended
	f, mode := l.f, l.fsync
	l.mu.Unlock()

	var err error
	if len(buf) > 0 {
		_, err = f.Write(buf)
		metFlushBytes.Add(uint64(len(buf)))
	}
	if err == nil && mode == FsyncAlways {
		err = f.Sync()
		metFsyncs.Inc()
	}

	l.mu.Lock()
	l.flushing = false
	l.spare = buf[:0]
	if err != nil {
		if l.err == nil {
			l.err = fmt.Errorf("wal: flush %s: %w", f.Name(), err)
		}
	} else {
		if target > l.durable {
			l.durable = target
		}
		// Advance the shipping watermark: these bytes are now safe to
		// stream to followers. Rotation cannot interleave with a flush
		// (compaction drains first), so the offset tracks l.f.
		l.durableOff += int64(len(buf))
	}
	l.cond.Broadcast()
}

// drainLocked runs flushes until nothing is pending (or an error
// latches). Caller holds l.mu.
func (l *Log) drainLocked() {
	for l.err == nil && (l.durable < l.appended || l.flushing) {
		if !l.flushing {
			l.flushLocked()
			continue
		}
		l.cond.Wait()
	}
}

// Checkpoint folds all WAL records into a fresh segment now, regardless
// of the compaction threshold. Called on clean shutdown so the next
// boot recovers from the segment alone.
func (l *Log) Checkpoint() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	for l.compacting {
		l.cond.Wait()
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.compacting = true
	l.mu.Unlock()
	return l.runCompaction()
}

// runCompaction rotates the active WAL and folds everything older into
// a new segment. Caller must have set l.compacting under l.mu; it is
// cleared here. Failures are non-fatal: the records stay replayable in
// the unfolded WAL files, so only the fold is retried later.
func (l *Log) runCompaction() error {
	err := l.compactOnce()
	l.mu.Lock()
	l.compacting = false
	if err != nil {
		l.compactErr = err.Error()
		metCompactErr.Inc()
	} else {
		l.compactErr = ""
		metCompacts.Inc()
	}
	// Reset the trigger either way — on failure the next threshold
	// crossing retries instead of every commit hammering a sick disk.
	l.sinceFold = 0
	l.cond.Broadcast()
	l.mu.Unlock()
	return err
}

func (l *Log) compactOnce() error {
	// Rotate: drain pending appends into the current WAL, then start a
	// fresh one so the files being folded are immutable. Appends block
	// on l.mu only for the file creation — compaction's heavy IO runs
	// after release.
	l.mu.Lock()
	l.drainLocked()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	oldSeq, segSeq := l.seq, l.segSeq
	nf, err := createFile(walPath(l.dir, oldSeq+1), magicWAL, oldSeq+1)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	old := l.f
	l.f = nf
	l.seq = oldSeq + 1
	l.durableOff = headerLen(oldSeq + 1)
	l.mu.Unlock()

	// The rotated file must be fully on disk before folding reads it —
	// even in FsyncOff, so a fold never reads a stale page.
	if err := old.Sync(); err != nil {
		old.Close()
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	old.Close()
	if err := syncDir(l.dir); err != nil {
		return err
	}

	// Fold segment segSeq plus WALs (segSeq, oldSeq] into a new sealed
	// segment at oldSeq, then retire the inputs. Every step is
	// crash-safe: the new segment appears atomically via rename, and
	// inputs are deleted only after it is durable.
	state, folded, err := foldFiles(l.dir, segSeq, oldSeq)
	if err != nil {
		return err
	}
	if err := writeSegment(l.dir, oldSeq, state); err != nil {
		return err
	}
	metFolded.Add(uint64(folded))

	// Read-through: hand the new segment to the store BEFORE deleting the
	// fold inputs, so there is never a moment where a descriptor is
	// neither in a reachable segment nor in a WAL file. The store's swap
	// (Options.OnSwap) is atomic under its own lock; the old reader is
	// closed only after nothing can route reads to it.
	if l.readThrough {
		nr, err := OpenSegmentReader(l.dir, oldSeq)
		if err != nil {
			// Undo the segment write so state is exactly as if the fold
			// failed: inputs intact, no orphan segment, retried later.
			os.Remove(segPath(l.dir, oldSeq))
			return fmt.Errorf("wal: reopen segment %d: %w", oldSeq, err)
		}
		if l.onSwap != nil {
			l.onSwap(nr, oldSeq)
		}
		l.mu.Lock()
		oldReader := l.reader
		l.reader = nr
		l.mu.Unlock()
		if oldReader != nil {
			oldReader.Close()
		}
	}

	var firstErr error
	if segSeq != 0 {
		if err := os.Remove(segPath(l.dir, segSeq)); err != nil && !os.IsNotExist(err) {
			firstErr = err
		}
	}
	// Retention: folded WAL files pinned by a follower cursor survive the
	// fold (within the ShipRetain budget) so the follower keeps tailing
	// the same byte stream across the fold; the rest are deleted as
	// before. A pin the budget evicts strands its follower on the
	// snapshot path — reported via OnRetainDrop.
	candidates := make(map[uint64]int64)
	for seq := segSeq + 1; seq <= oldSeq; seq++ {
		if fi, err := os.Stat(walPath(l.dir, seq)); err == nil {
			candidates[seq] = fi.Size()
		}
	}
	l.mu.Lock()
	// Publish the new segment before deleting its inputs: a shipping
	// reader that finds a WAL file missing classifies it by segSeq
	// (<= segSeq: folded away, reseed; > segSeq: never existed, skip),
	// so the flip must happen first.
	l.segSeq = oldSeq
	remove, dropped := l.retentionLocked(candidates)
	l.mu.Unlock()
	for _, seq := range remove {
		if err := os.Remove(walPath(l.dir, seq)); err != nil && !os.IsNotExist(err) && firstErr == nil {
			firstErr = err
		}
	}
	if err := syncDir(l.dir); err != nil && firstErr == nil {
		firstErr = err
	}
	for follower, c := range dropped {
		metRetainDrops.Inc()
		if l.onRetainDrop != nil {
			l.onRetainDrop(follower, c)
		}
	}

	if l.onSeal != nil {
		l.onSeal(oldSeq)
	}
	return firstErr
}

// Close checkpoints (best effort) and closes the log. Appends and
// commits after Close return ErrClosed.
func (l *Log) Close() error {
	cerr := l.Checkpoint()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.drainLocked()
	if l.err != nil && cerr == nil {
		cerr = l.err
	}
	l.closed = true
	if l.err == nil {
		l.err = ErrClosed
	}
	f, r := l.f, l.reader
	l.f, l.reader = nil, nil
	l.cond.Broadcast()
	l.mu.Unlock()
	if f != nil {
		f.Close()
	}
	// The store may still hold this reader; closing it here (after the
	// serve path is down — Close is the last step of peer shutdown) turns
	// any straggling disk read into a counted error, not a wrong answer.
	if r != nil {
		r.Close()
	}
	return cerr
}

// Crash abandons the log without flushing buffered records — the test
// hook simulating kill -9 between append and commit. Anything already
// acknowledged (committed) is on disk; anything merely appended is
// lost, exactly as an unacknowledged write may be.
func (l *Log) Crash() {
	l.mu.Lock()
	for l.flushing || l.compacting {
		l.cond.Wait()
	}
	l.buf = nil
	l.closed = true
	if l.err == nil {
		l.err = ErrClosed
	}
	f, r := l.f, l.reader
	l.f, l.reader = nil, nil
	l.cond.Broadcast()
	l.mu.Unlock()
	if f != nil {
		f.Close()
	}
	if r != nil {
		r.Close()
	}
}

// Stats is a point-in-time durability summary, surfaced on /status.
type Stats struct {
	Dir           string `json:"dir"`
	Fsync         string `json:"fsync"`
	ActiveSeq     uint64 `json:"active_seq"`
	SegmentSeq    uint64 `json:"segment_seq"`
	Appended      uint64 `json:"appended"`
	Durable       uint64 `json:"durable"`
	SinceFold     int    `json:"since_fold"`
	RetainedBytes int64  `json:"retained_bytes,omitempty"`
	Pins          int    `json:"pins,omitempty"`
	Err           string `json:"err,omitempty"`
}

// Stats reports the log's current state.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Dir:        l.dir,
		Fsync:      l.fsync.String(),
		ActiveSeq:  l.seq,
		SegmentSeq: l.segSeq,
		Appended:   l.appended,
		Durable:    l.durable,
		SinceFold:  l.sinceFold,
		Pins:       len(l.pins),
	}
	for _, size := range l.retained {
		st.RetainedBytes += size
	}
	if l.err != nil && l.err != ErrClosed {
		st.Err = l.err.Error()
	} else if l.compactErr != "" {
		st.Err = "compaction: " + l.compactErr
	}
	return st
}

// File naming: wal-<seq>.log for append logs, seg-<seq>.seg for sealed
// segments, both carrying the sequence number again in their header so
// a renamed file cannot masquerade as another position in the order.

func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq))
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%016x.seg", seq))
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir: %w", err)
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("wal: sync dir: %w", serr)
	}
	return nil
}
