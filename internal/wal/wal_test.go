package wal

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"p2prange/internal/rangeset"
	"p2prange/internal/store"
	"p2prange/internal/transport"
)

func testPart(i int) store.Partition {
	return store.Partition{
		Relation:  "R",
		Attribute: "a",
		Range:     rangeset.Range{Lo: int64(i), Hi: int64(i + 10)},
		Holder:    fmt.Sprintf("peer-%d:4000", i),
		Version:   uint64(i % 4),
		Origin:    fmt.Sprintf("origin-%d", i%3),
	}
}

// openStore opens (or recovers) a durable store in dir.
func openStore(t *testing.T, dir string, opt Options) (*store.Store, *Log, Recovery) {
	t.Helper()
	opt.Dir = dir
	st := store.New()
	lg, rec, err := Open(opt, StoreRestorer(st))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st.SetJournal(lg)
	return st, lg, rec
}

// files lists dir's entries for assertions.
func files(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var out []string
	for _, e := range ents {
		out = append(out, e.Name())
	}
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Op: OpPut, ID: 0xdeadbeef, Part: testPart(7)},
		{Op: OpPut, ID: 0, Part: store.Partition{Relation: "R", Attribute: "a",
			Range: rangeset.Range{Lo: -50, Hi: 50}}},
		{Op: OpEvict, ID: 42, Key: testPart(3).Key()},
		{Op: OpDropArc, From: 0xffffffff, To: 0},
		{Op: opSeal, Count: 12345},
	}
	for _, want := range recs {
		body := AppendRecord(nil, &want)
		got, err := ParseRecord(transport.NewCursor(body))
		if err != nil {
			t.Fatalf("ParseRecord(op %d): %v", want.Op, err)
		}
		if got != want {
			t.Errorf("round trip op %d: got %+v want %+v", want.Op, got, want)
		}
	}
}

func TestRecordRejectsGarbage(t *testing.T) {
	if _, err := ParseRecord(transport.NewCursor(nil)); err == nil {
		t.Error("empty body parsed")
	}
	if _, err := ParseRecord(transport.NewCursor([]byte{99})); err == nil {
		t.Error("unknown op parsed")
	}
	// Trailing garbage after a valid body must be rejected.
	body := AppendRecord(nil, &Record{Op: OpEvict, ID: 1, Key: "k"})
	if _, err := ParseRecord(transport.NewCursor(append(body, 0))); err == nil {
		t.Error("trailing byte accepted")
	}
	// Truncations of a valid body must error, never panic.
	body = AppendRecord(nil, &Record{Op: OpPut, ID: 9, Part: testPart(9)})
	for n := 0; n < len(body); n++ {
		if _, err := ParseRecord(transport.NewCursor(body[:n])); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestRecoverEmptyDirIsNewPeer(t *testing.T) {
	dir := t.TempDir()
	st, lg, rec := openStore(t, dir, Options{})
	defer lg.Close()
	if rec.SegmentSeq != 0 || rec.Replayed != 0 || rec.TornTail {
		t.Errorf("fresh dir recovery not empty: %+v", rec)
	}
	if st.Len() != 0 {
		t.Errorf("fresh store has %d descriptors", st.Len())
	}
}

func TestRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, lg, _ := openStore(t, dir, Options{})
	for i := 0; i < 50; i++ {
		st.Put(uint32(i%10), testPart(i))
	}
	st.Delete(3, testPart(3).Key())
	if err := lg.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, lg2, rec := openStore(t, dir, Options{})
	defer lg2.Close()
	// Clean shutdown checkpoints, so recovery comes from a segment.
	if rec.SegmentSeq == 0 || rec.SegmentRecords != st.Len() {
		t.Errorf("recovery = %+v, want %d records from a segment", rec, st.Len())
	}
	if st2.Len() != st.Len() {
		t.Fatalf("recovered %d descriptors, want %d", st2.Len(), st.Len())
	}
	for i := 0; i < 50; i++ {
		p := testPart(i)
		got, ok := st2.Get(uint32(i%10), p.Key())
		if i == 3 {
			if ok {
				t.Errorf("deleted descriptor %d resurrected", i)
			}
			continue
		}
		if !ok {
			t.Errorf("descriptor %d missing after recovery", i)
		} else if got != p {
			t.Errorf("descriptor %d = %+v, want %+v (version/origin must survive)", i, got, p)
		}
	}
}

func TestRecoverVersionUpgradeSurvives(t *testing.T) {
	dir := t.TempDir()
	st, lg, _ := openStore(t, dir, Options{})
	p := testPart(1)
	p.Version = 1
	st.Put(5, p)
	p.Version = 7
	p.Holder = "upgraded:4000"
	st.Put(5, p) // in-place upgrade, journaled
	lg.Commit()
	lg.Crash()

	st2, lg2, _ := openStore(t, dir, Options{})
	defer lg2.Close()
	got, ok := st2.Get(5, p.Key())
	if !ok || got.Version != 7 || got.Holder != "upgraded:4000" {
		t.Errorf("recovered %+v ok=%v, want version 7 at upgraded holder", got, ok)
	}
}

func TestRecoverDropArc(t *testing.T) {
	dir := t.TempDir()
	st, lg, _ := openStore(t, dir, Options{})
	for i := 0; i < 20; i++ {
		st.Put(uint32(i*100), testPart(i))
	}
	// Drop the arc (500, 1500]: buckets 600..1500.
	st.ExtractArc(500, 1500)
	lg.Commit()
	lg.Crash()

	st2, lg2, _ := openStore(t, dir, Options{})
	defer lg2.Close()
	for i := 0; i < 20; i++ {
		id := uint32(i * 100)
		_, ok := st2.Get(id, testPart(i).Key())
		wantGone := id > 500 && id <= 1500
		if ok == wantGone {
			t.Errorf("bucket %d: present=%v after arc drop replay", id, ok)
		}
	}
}

func TestCompactionFoldsAndRetiresFiles(t *testing.T) {
	dir := t.TempDir()
	st, lg, _ := openStore(t, dir, Options{CompactEvery: 10})
	for i := 0; i < 35; i++ {
		st.Put(uint32(i), testPart(i))
		if err := lg.Commit(); err != nil {
			t.Fatalf("Commit %d: %v", i, err)
		}
	}
	stats := lg.Stats()
	if stats.SegmentSeq == 0 {
		t.Fatalf("no segment after %d committed puts with CompactEvery=10: %+v\nfiles: %v",
			35, stats, files(t, dir))
	}
	// Folded WAL files must be gone; only the segment and the active WAL
	// (plus at most the unfolded tail) remain.
	var walFiles, segFiles int
	for _, name := range files(t, dir) {
		switch {
		case strings.HasSuffix(name, ".log"):
			walFiles++
		case strings.HasSuffix(name, ".seg"):
			segFiles++
		}
	}
	if segFiles != 1 {
		t.Errorf("%d segment files, want exactly 1", segFiles)
	}
	if walFiles > 2 {
		t.Errorf("%d WAL files left after compaction, want <= 2", walFiles)
	}
	lg.Crash() // no checkpoint: recovery must use segment + WAL tail

	st2, lg2, rec := openStore(t, dir, Options{CompactEvery: 10})
	defer lg2.Close()
	if st2.Len() != 35 {
		t.Errorf("recovered %d descriptors, want 35 (recovery %+v)", st2.Len(), rec)
	}
	if rec.SegmentSeq == 0 {
		t.Errorf("recovery ignored the segment: %+v", rec)
	}
}

func TestCheckpointMakesRecoverySegmentOnly(t *testing.T) {
	dir := t.TempDir()
	st, lg, _ := openStore(t, dir, Options{})
	for i := 0; i < 12; i++ {
		st.Put(uint32(i), testPart(i))
	}
	lg.Commit()
	if err := lg.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	lg.Crash()

	_, lg2, rec := openStore(t, dir, Options{})
	defer lg2.Close()
	if rec.SegmentRecords != 12 || rec.Replayed != 0 {
		t.Errorf("post-checkpoint recovery = %+v, want 12 segment records, 0 replayed", rec)
	}
}

func TestFsyncOffStillRecovers(t *testing.T) {
	dir := t.TempDir()
	st, lg, _ := openStore(t, dir, Options{Fsync: FsyncOff})
	for i := 0; i < 8; i++ {
		st.Put(1, testPart(i))
	}
	if err := lg.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	lg.Crash() // process-crash model: pages written, never fsynced

	st2, lg2, _ := openStore(t, dir, Options{Fsync: FsyncOff})
	defer lg2.Close()
	if st2.Len() != 8 {
		t.Errorf("recovered %d, want 8", st2.Len())
	}
}

func TestCommitAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	st, lg, _ := openStore(t, dir, Options{})
	lg.Close()
	st.Put(1, testPart(1)) // silently unjournaled — store stays usable
	if err := lg.Commit(); err == nil {
		t.Error("Commit on closed log succeeded")
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	st, lg, _ := openStore(t, dir, Options{})
	defer lg.Close()
	const writers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				st.Put(uint32(w), testPart(w*each+i))
				if err := lg.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Commit: %v", err)
	}
	stats := lg.Stats()
	if stats.Durable != stats.Appended || stats.Appended != writers*each {
		t.Errorf("stats %+v, want %d appended == durable", stats, writers*each)
	}
}

func TestStatsOnStatusFields(t *testing.T) {
	dir := t.TempDir()
	st, lg, _ := openStore(t, dir, Options{})
	defer lg.Close()
	st.Put(1, testPart(1))
	lg.Commit()
	s := lg.Stats()
	if s.Dir != dir || s.Fsync != "always" || s.ActiveSeq == 0 || s.Err != "" {
		t.Errorf("Stats = %+v", s)
	}
}

// TestEmptySegmentVerifiesClean pins the dataEnd == recStart boundary: a
// checkpoint of an empty store (the shape a graceful-leave handoff
// leaves behind) seals a segment with zero put records, and offline
// verification must accept its footer. Regression: parseFooter rejected
// dataEnd == recStart, so walctl verify flagged every post-handoff
// checkpoint as footer-damaged.
func TestEmptySegmentVerifiesClean(t *testing.T) {
	dir := t.TempDir()
	st, lg, _ := openStore(t, dir, Options{CompactEvery: -1})
	for i := 0; i < 3; i++ {
		st.Put(uint32(i), testPart(i))
	}
	st.ExtractArc(0, 0) // journaled whole-circle drop: the handoff shape
	if err := lg.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := lg.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := lg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rep, err := InspectDir(dir, nil)
	if err != nil {
		t.Fatalf("InspectDir: %v", err)
	}
	var sawSegment bool
	for _, f := range rep.Files {
		if f.Kind == "segment" {
			sawSegment = true
			if f.Records != 0 {
				t.Errorf("%s: %d records, want 0", f.Name, f.Records)
			}
		}
	}
	if !sawSegment {
		t.Fatal("checkpoint wrote no segment")
	}
	if !rep.Clean() {
		t.Fatalf("empty checkpoint reported damage: %+v", rep.Files)
	}
}
