// Package workload generates the query-range workloads of the paper's
// evaluation (Sec. 5.1): 10,000 uniform random integer ranges over
// [0, 1000] with ~0.2% repetitions — the input behind Figs. 6-10 — plus
// skewed extensions (Zipf-popular hot spots, clustered ranges) for
// ablations beyond the paper. All generators are deterministic given a
// seed, so every experiment and test replays the same query stream.
package workload
