package workload

import (
	"fmt"
	"math/rand"

	"p2prange/internal/rangeset"
)

// Paper workload constants (Sec. 5.1).
const (
	// DefaultDomainLo and DefaultDomainHi bound the attribute domain.
	DefaultDomainLo = 0
	DefaultDomainHi = 1000
	// DefaultQueries is the number of query ranges in the quality runs.
	DefaultQueries = 10000
	// DefaultWarmupFrac is the fraction of initial queries excluded from
	// measurement (the paper removes the first 20%).
	DefaultWarmupFrac = 0.20
)

// Generator produces query ranges.
type Generator interface {
	// Next returns the next query range.
	Next() rangeset.Range
	// Name identifies the workload for reports.
	Name() string
}

// Uniform draws ranges whose endpoints are independent uniform values in
// [Lo, Hi], swapped into order — the paper's workload. The expected range
// size is (Hi-Lo)/3.
type Uniform struct {
	Lo, Hi int64
	rng    *rand.Rand
}

// NewUniform returns the paper's uniform workload over [lo, hi].
func NewUniform(lo, hi int64, seed int64) *Uniform {
	if hi <= lo {
		panic(fmt.Sprintf("workload: bad domain [%d,%d]", lo, hi))
	}
	return &Uniform{Lo: lo, Hi: hi, rng: rand.New(rand.NewSource(seed))}
}

// Next implements Generator.
func (u *Uniform) Next() rangeset.Range {
	span := u.Hi - u.Lo + 1
	a := u.Lo + u.rng.Int63n(span)
	b := u.Lo + u.rng.Int63n(span)
	if a > b {
		a, b = b, a
	}
	return rangeset.Range{Lo: a, Hi: b}
}

// Name implements Generator.
func (u *Uniform) Name() string { return fmt.Sprintf("uniform[%d,%d]", u.Lo, u.Hi) }

// FixedSize draws ranges of exactly Size whose start is uniform; used by
// the Fig. 5 timing sweep, which varies the range size from 10 to 1500.
type FixedSize struct {
	Lo, Hi int64
	Size   int64
	rng    *rand.Rand
}

// NewFixedSize returns a generator of size-sized ranges within [lo, hi].
func NewFixedSize(lo, hi, size int64, seed int64) *FixedSize {
	if size < 1 || hi-lo+1 < size {
		panic(fmt.Sprintf("workload: size %d does not fit domain [%d,%d]", size, lo, hi))
	}
	return &FixedSize{Lo: lo, Hi: hi, Size: size, rng: rand.New(rand.NewSource(seed))}
}

// Next implements Generator.
func (f *FixedSize) Next() rangeset.Range {
	start := f.Lo + f.rng.Int63n(f.Hi-f.Lo+2-f.Size)
	return rangeset.Range{Lo: start, Hi: start + f.Size - 1}
}

// Name implements Generator.
func (f *FixedSize) Name() string { return fmt.Sprintf("fixed-size %d", f.Size) }

// Zipf draws range centers from a Zipf distribution over the domain, so
// some attribute regions are queried far more often — the skewed-workload
// extension. Widths are uniform up to MaxWidth.
type Zipf struct {
	Lo, Hi   int64
	MaxWidth int64
	rng      *rand.Rand
	zipf     *rand.Zipf
}

// NewZipf returns a skewed workload; s > 1 controls the skew.
func NewZipf(lo, hi, maxWidth int64, s float64, seed int64) *Zipf {
	rng := rand.New(rand.NewSource(seed))
	n := uint64(hi - lo)
	return &Zipf{
		Lo: lo, Hi: hi, MaxWidth: maxWidth,
		rng:  rng,
		zipf: rand.NewZipf(rng, s, 1, n),
	}
}

// Next implements Generator.
func (z *Zipf) Next() rangeset.Range {
	center := z.Lo + int64(z.zipf.Uint64())
	w := z.rng.Int63n(z.MaxWidth) + 1
	lo, hi := center-w/2, center+(w-1)/2
	if lo < z.Lo {
		lo = z.Lo
	}
	if hi > z.Hi {
		hi = z.Hi
	}
	if hi < lo {
		hi = lo
	}
	return rangeset.Range{Lo: lo, Hi: hi}
}

// Name implements Generator.
func (z *Zipf) Name() string { return "zipf" }

// Clustered draws ranges around a small set of popular centers with
// Gaussian jitter, modeling "broad queries about the same hot topics".
type Clustered struct {
	Lo, Hi   int64
	Centers  []int64
	Spread   float64
	MaxWidth int64
	rng      *rand.Rand
}

// NewClustered builds a workload with k cluster centers spread evenly.
func NewClustered(lo, hi int64, k int, spread float64, maxWidth int64, seed int64) *Clustered {
	if k < 1 {
		panic("workload: need at least one cluster")
	}
	centers := make([]int64, k)
	for i := range centers {
		centers[i] = lo + (hi-lo)*int64(i*2+1)/int64(2*k)
	}
	return &Clustered{
		Lo: lo, Hi: hi, Centers: centers, Spread: spread, MaxWidth: maxWidth,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Next implements Generator.
func (c *Clustered) Next() rangeset.Range {
	center := c.Centers[c.rng.Intn(len(c.Centers))]
	center += int64(c.rng.NormFloat64() * c.Spread)
	w := c.rng.Int63n(c.MaxWidth) + 1
	lo, hi := center-w/2, center+(w-1)/2
	if lo < c.Lo {
		lo = c.Lo
	}
	if hi > c.Hi {
		hi = c.Hi
	}
	if hi < lo {
		lo, hi = c.Lo, c.Lo
	}
	return rangeset.Range{Lo: lo, Hi: hi}
}

// Name implements Generator.
func (c *Clustered) Name() string { return fmt.Sprintf("clustered(%d)", len(c.Centers)) }

// Take drains n ranges from g into a slice.
func Take(g Generator, n int) []rangeset.Range {
	out := make([]rangeset.Range, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// RepetitionRate returns the fraction of queries that exactly repeat an
// earlier query; the paper reports ~0.2% for its uniform workload.
func RepetitionRate(qs []rangeset.Range) float64 {
	if len(qs) == 0 {
		return 0
	}
	seen := make(map[rangeset.Range]struct{}, len(qs))
	reps := 0
	for _, q := range qs {
		if _, ok := seen[q]; ok {
			reps++
		} else {
			seen[q] = struct{}{}
		}
	}
	return float64(reps) / float64(len(qs))
}

// ZipfChoice draws each query from a fixed catalog of ranges with
// Zipf-distributed popularity: a few catalog entries absorb most of the
// traffic. The load experiment uses it over the set of already-published
// partitions, so every query has an exact answer while the skew
// concentrates probes on a handful of buckets.
type ZipfChoice struct {
	ranges []rangeset.Range
	zipf   *rand.Zipf
}

// NewZipfChoice returns a Zipf-weighted choice over ranges; s > 1
// controls the skew (rank-1 popularity ~ 1/rank^s).
func NewZipfChoice(ranges []rangeset.Range, s float64, seed int64) *ZipfChoice {
	if len(ranges) == 0 {
		panic("workload: ZipfChoice needs at least one range")
	}
	rng := rand.New(rand.NewSource(seed))
	return &ZipfChoice{
		ranges: ranges,
		zipf:   rand.NewZipf(rng, s, 1, uint64(len(ranges)-1)),
	}
}

// Next implements Generator.
func (z *ZipfChoice) Next() rangeset.Range { return z.ranges[z.zipf.Uint64()] }

// Name implements Generator.
func (z *ZipfChoice) Name() string { return fmt.Sprintf("zipf-choice(%d)", len(z.ranges)) }

// Preset returns a named workload over the default domain, for CLI
// selection (rangebench -workload): "uniform" is the paper's workload,
// "zipf" the skewed-centers extension (s=1.2, widths up to 300), and
// "clustered" five hot topics with Gaussian jitter.
func Preset(name string, seed int64) (Generator, error) {
	lo, hi := int64(DefaultDomainLo), int64(DefaultDomainHi)
	switch name {
	case "", "uniform":
		return NewUniform(lo, hi, seed), nil
	case "zipf":
		return NewZipf(lo, hi, 300, 1.2, seed), nil
	case "clustered":
		return NewClustered(lo, hi, 5, 30, 300, seed), nil
	default:
		return nil, fmt.Errorf("workload: unknown preset %q (want uniform, zipf, or clustered)", name)
	}
}
