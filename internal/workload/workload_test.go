package workload

import (
	"math"
	"testing"

	"p2prange/internal/rangeset"
)

func TestUniformWithinDomain(t *testing.T) {
	g := NewUniform(0, 1000, 1)
	for i := 0; i < 10000; i++ {
		q := g.Next()
		if q.Lo < 0 || q.Hi > 1000 || q.Hi < q.Lo {
			t.Fatalf("bad range %v", q)
		}
	}
}

func TestUniformExpectedSize(t *testing.T) {
	g := NewUniform(0, 1000, 2)
	var total float64
	const n = 50000
	for i := 0; i < n; i++ {
		total += float64(g.Next().Size())
	}
	mean := total / n
	// E[|hi-lo|] for two uniforms on [0,1000] is ~333.7; size adds 1.
	if math.Abs(mean-334.7) > 10 {
		t.Errorf("mean size %g, want ≈ 334", mean)
	}
}

func TestUniformDeterministic(t *testing.T) {
	a, b := NewUniform(0, 1000, 7), NewUniform(0, 1000, 7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewUniform(0, 1000, 8)
	same := true
	a2 := NewUniform(0, 1000, 7)
	for i := 0; i < 100; i++ {
		if a2.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRepetitionRateMatchesPaper(t *testing.T) {
	// The paper reports ~0.2% repetitions for 10,000 uniform ranges over
	// [0,1000]; our generator should land in that neighborhood.
	qs := Take(NewUniform(0, 1000, 42), DefaultQueries)
	rate := RepetitionRate(qs)
	if rate < 0.0002 || rate > 0.02 {
		t.Errorf("repetition rate = %.4f, want ≈ 0.002", rate)
	}
}

func TestFixedSize(t *testing.T) {
	g := NewFixedSize(0, 100000, 1500, 3)
	for i := 0; i < 1000; i++ {
		q := g.Next()
		if q.Size() != 1500 {
			t.Fatalf("size = %d", q.Size())
		}
		if q.Lo < 0 || q.Hi > 100000 {
			t.Fatalf("out of domain: %v", q)
		}
	}
}

func TestFixedSizePanicsWhenTooBig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for oversized range")
		}
	}()
	NewFixedSize(0, 10, 50, 1)
}

func TestZipfSkew(t *testing.T) {
	g := NewZipf(0, 1000, 100, 1.5, 4)
	counts := make(map[int64]int)
	for i := 0; i < 20000; i++ {
		q := g.Next()
		if q.Lo < 0 || q.Hi > 1000 || q.Hi < q.Lo {
			t.Fatalf("bad range %v", q)
		}
		counts[q.Lo/100]++ // decile of the domain
	}
	// Zipf centers concentrate near the low end of the domain.
	if counts[0] < counts[5] {
		t.Errorf("no skew: decile0=%d decile5=%d", counts[0], counts[5])
	}
}

func TestClusteredAroundCenters(t *testing.T) {
	g := NewClustered(0, 1000, 2, 10, 50, 5)
	near := 0
	const n = 5000
	for i := 0; i < n; i++ {
		q := g.Next()
		mid := (q.Lo + q.Hi) / 2
		for _, c := range g.Centers {
			if mid > c-80 && mid < c+80 {
				near++
				break
			}
		}
	}
	if float64(near)/n < 0.95 {
		t.Errorf("only %d/%d ranges near cluster centers", near, n)
	}
}

func TestTake(t *testing.T) {
	qs := Take(NewUniform(0, 10, 1), 25)
	if len(qs) != 25 {
		t.Errorf("Take returned %d", len(qs))
	}
}

func TestNames(t *testing.T) {
	gens := []Generator{
		NewUniform(0, 10, 1),
		NewFixedSize(0, 100, 5, 1),
		NewZipf(0, 100, 10, 1.1, 1),
		NewClustered(0, 100, 2, 5, 10, 1),
	}
	seen := map[string]bool{}
	for _, g := range gens {
		name := g.Name()
		if name == "" || seen[name] {
			t.Errorf("bad or duplicate name %q", name)
		}
		seen[name] = true
	}
}

func TestPreset(t *testing.T) {
	for _, name := range []string{"", "uniform", "zipf", "clustered"} {
		g, err := Preset(name, 42)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		for i := 0; i < 100; i++ {
			if q := g.Next(); !q.Valid() || q.Lo < DefaultDomainLo || q.Hi > DefaultDomainHi {
				t.Fatalf("Preset(%q) emitted out-of-domain range %s", name, q)
			}
		}
	}
	if _, err := Preset("nope", 42); err == nil {
		t.Error("unknown preset should error")
	}
}

func TestZipfChoiceSkewsTowardHead(t *testing.T) {
	catalog := Take(NewUniform(0, 1000, 7), 100)
	g := NewZipfChoice(catalog, 1.3, 42)
	counts := make(map[rangeset.Range]int)
	const n = 5000
	for i := 0; i < n; i++ {
		q := g.Next()
		found := false
		for _, c := range catalog {
			if c == q {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("emitted range %s outside the catalog", q)
		}
		counts[q]++
	}
	// The head of the catalog must dominate: rank 1 alone should take a
	// large share under s=1.3.
	if head := counts[catalog[0]]; float64(head)/n < 0.25 {
		t.Errorf("rank-1 range got %d/%d queries; workload not skewed", head, n)
	}
	// Determinism: same seed replays the same stream.
	g2 := NewZipfChoice(catalog, 1.3, 42)
	g3 := NewZipfChoice(catalog, 1.3, 42)
	for i := 0; i < 50; i++ {
		if g2.Next() != g3.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
}
