package p2prange

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"p2prange/internal/chord"
	"p2prange/internal/flight"
	"p2prange/internal/metrics"
	"p2prange/internal/minhash"
	"p2prange/internal/obs"
	"p2prange/internal/peer"
	"p2prange/internal/query"
	"p2prange/internal/relation"
	"p2prange/internal/ship"
	"p2prange/internal/store"
	"p2prange/internal/trace"
	"p2prange/internal/transport"
	"p2prange/internal/wal"
)

// LiveConfig configures a real TCP peer. All peers of one ring must use
// the same Family, K, L, and SchemeSeed, or their identifiers will not
// line up; SchemeSeed is therefore an explicit, shared parameter.
type LiveConfig struct {
	// Family, K, L parameterize the shared LSH scheme (defaults:
	// ApproxMinWise, 20, 5).
	Family Family
	K, L   int
	// SchemeSeed derives the shared key material (default 1).
	SchemeSeed int64
	// Measure is the bucket match measure (zero value MatchJaccard).
	Measure Measure
	// Schema enables partition data serving.
	Schema *Schema
	// Replicas pushes each stored descriptor to that many ring successors.
	// Setting it enables the replica subsystem: versioned copies, periodic
	// anti-entropy repair (cadence via Stabilize.RepairEvery), and
	// hot-bucket promotion.
	Replicas int
	// LoadAware routes each bucket probe to the least-loaded live replica
	// instead of always the owner. Effective only with Replicas > 0.
	LoadAware bool
	// HotReplicas is the replica-set size for popular buckets (owner
	// included; default 2*(Replicas+1)).
	HotReplicas int
	// HotThreshold is the decayed probe count promoting a bucket to
	// HotReplicas copies (default replica.DefaultHotThreshold).
	HotThreshold uint64
	// Stabilize controls the chord maintenance cadence; zero values use
	// chord defaults.
	Stabilize chord.MaintainerConfig
	// Retry controls transport-level retries. Zero values mean 3 attempts
	// with 25ms base backoff; set DisableRetry to turn retries off.
	Retry        transport.RetryConfig
	DisableRetry bool
	// DisableRerouting turns off failure-aware chord routing (lookups fail
	// on the first unreachable hop instead of detouring via successor
	// lists). Exposed for fault-model ablations.
	DisableRerouting bool
	// Fault, when non-nil, injects deterministic faults (drops, delays,
	// outages) between this peer and the network — for resilience testing
	// on real TCP clusters.
	Fault *transport.FaultConfig
	// SigCache bounds this peer's signature cache (hashed ranges memoized
	// and extended across lookups); 0 disables the cache — batched
	// evaluation still applies. Purely local, so peers of one ring may
	// differ.
	SigCache int
	// HashWorkers parallelizes signing across the k*l hash functions for
	// large ranges; 0 or 1 keeps signing serial.
	HashWorkers int
	// Codec selects the TCP wire protocol for outgoing calls:
	// transport.CodecBinary (the default, with per-address fallback when a
	// remote only speaks gob) or transport.CodecGob to force the legacy
	// protocol. The server side always answers whichever protocol the
	// client opens with.
	Codec string
	// DataDir, when set, makes the partition store durable: a write-ahead
	// log in that directory records every mutation, acknowledged writes
	// are fsynced before the ack, and a restart with the same directory
	// replays the store before rejoining the ring. Empty keeps the store
	// memory-only (the paper's model). One live peer per directory.
	DataDir string
	// Fsync selects the commit barrier when DataDir is set: "always"
	// (default — fsync before every acknowledgment, group-committed) or
	// "off" (OS page cache decides; survives process crashes only).
	Fsync string
	// CompactEvery folds the WAL into a segment file after that many
	// records (default wal.DefaultCompactEvery); negative disables
	// automatic compaction. Effective only with DataDir.
	CompactEvery int
	// Follow subscribes this peer to another peer's WAL (log shipping):
	// it seeds from the owner's sealed segment when too far behind, then
	// tails the acked record stream, applying each record through the
	// same journaled path recovery uses — a shipped store is
	// byte-identical to a locally recovered one. The value is the
	// owner's transport address. Usually combined with DataDir so the
	// copy is itself durable. See docs/DURABILITY.md.
	Follow string
	// ShipRetain bounds the extra WAL bytes kept past a fold only to let
	// follower cursors keep tailing (0: default 64MiB; negative retains
	// nothing — every fold forces followers onto the snapshot path).
	// Effective only with DataDir.
	ShipRetain int64
	// BackupTo mirrors every sealed segment into that directory — once
	// at startup and after each fold — using the same chunked,
	// CRC-verified reader the shipping protocol streams. Restore with
	// `walctl restore`. Effective only with DataDir.
	BackupTo string
	// MemLimit bounds the descriptor store to that many resident
	// descriptors. With DataDir set it also turns on segment
	// read-through: the in-memory store becomes a cache over the sealed
	// segment, evicted descriptors are re-read from disk on demand, and
	// the peer serves working sets larger than MemLimit without losing
	// answers (see docs/STORAGE.md). Without DataDir it is a plain LRU
	// cap — overflowing descriptors are dropped, the paper's cache
	// model. 0 means unbounded.
	MemLimit int
	// SlowThreshold is the flight recorder's slow-query cutoff: a
	// finished query at or over it is pinned in the slow ring (default
	// flight.DefaultSlowThreshold, 25ms). Effective unless FlightOff.
	SlowThreshold time.Duration
	// FlightKeep is the capacity of each pinned flight-recorder ring —
	// slow, top-K, errored, hop-heavy (default flight.DefaultKeep).
	FlightKeep int
	// FlightOff disables the always-on flight recorder. Queries then run
	// on the nil-span fast path with zero recording overhead, and the
	// /debug/slow and /debug/flight surfaces serve nothing.
	FlightOff bool
	// EventsDir overrides where the durable cluster event journal
	// (events.log) lives; empty uses DataDir. When both are empty the
	// journal is memory-only — the bounded in-process ring still serves
	// /debug/events, it just does not survive a restart.
	EventsDir string
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.K <= 0 {
		c.K = minhash.DefaultK
	}
	if c.L <= 0 {
		c.L = minhash.DefaultL
	}
	if c.SchemeSeed == 0 {
		c.SchemeSeed = 1
	}
	return c
}

// LivePeer is one real peer: a TCP server, a chord node with background
// stabilization, and the partition store/protocol.
type LivePeer struct {
	peer       *peer.Peer
	server     *transport.TCPServer
	caller     *transport.TCPCaller
	maintainer *chord.Maintainer
	stats      *metrics.RouteStats
	fault      *transport.FaultCaller
	schema     *relation.Schema
	wal        *wal.Log     // nil when DataDir is unset
	recovery   wal.Recovery // what boot-time replay found
	shipSvc    *ship.Service
	pusher     *ship.Pusher   // nil unless DataDir and Replicas
	follower   *ship.Follower // nil unless Follow

	flight       *flight.Recorder // nil when FlightOff
	events       *obs.EventLog    // nil when the journal is memory-only
	eventsDetach func()           // unhooks the durable sink on Close

	coalesce *query.Coalescer // shared singleflight for untraced SQL leaf fetches

	mu   sync.RWMutex
	base map[string]*relation.Relation // local base relations for SQL fallback
}

// StartPeer launches a live peer listening on listenAddr (host:port; the
// OS picks a port for ":0"). If bootstrap is non-empty the peer joins the
// ring that peer belongs to; otherwise it starts a new one-node ring.
func StartPeer(listenAddr, bootstrap string, cfg LiveConfig) (*LivePeer, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("p2prange: listen %s: %w", listenAddr, err)
	}
	addr := ln.Addr().String()

	raw, err := minhash.NewScheme(cfg.Family, cfg.K, cfg.L, rand.New(rand.NewSource(cfg.SchemeSeed)))
	if err != nil {
		ln.Close()
		return nil, err
	}
	stats := &metrics.RouteStats{}
	tcp := transport.NewTCPCaller()
	tcp.Codec = cfg.Codec
	caller := transport.Caller(tcp)
	var fault *transport.FaultCaller
	if cfg.Fault != nil {
		fault = transport.NewFaultCaller(caller, *cfg.Fault)
		caller = fault
	}
	if !cfg.DisableRetry {
		rc := cfg.Retry
		if rc.BaseDelay <= 0 {
			rc.BaseDelay = 25 * time.Millisecond
		}
		if rc.Seed == 0 {
			rc.Seed = int64(chord.HashAddr(addr))
		}
		rc.Stats = stats
		caller = transport.NewRetryCaller(caller, rc)
	}
	p, err := peer.New(addr, caller, peer.Config{
		Scheme:        raw.Compiled(),
		Measure:       cfg.Measure,
		Schema:        cfg.Schema,
		Replicas:      cfg.Replicas,
		LoadAware:     cfg.LoadAware,
		HotReplicas:   cfg.HotReplicas,
		HotThreshold:  cfg.HotThreshold,
		SigCache:      cfg.SigCache,
		HashWorkers:   cfg.HashWorkers,
		CacheCapacity: cfg.MemLimit,
		Chord: chord.Config{
			DisableRerouting: cfg.DisableRerouting,
			Stats:            stats,
		},
	})
	if err != nil {
		ln.Close()
		return nil, err
	}
	lp := &LivePeer{
		peer:     p,
		caller:   tcp,
		stats:    stats,
		fault:    fault,
		schema:   cfg.Schema,
		base:     make(map[string]*relation.Relation),
		coalesce: query.NewCoalescer(),
	}
	if !cfg.FlightOff {
		// The flight recorder is on by default: tail-based keeps are the
		// point — no flag should be needed to have captured the slow query
		// that already happened. The exemplar hook pins each recorded
		// lookup's trace ID onto its peer.lookup_us latency bucket, so a
		// Prometheus scrape links a slow bucket straight to a retained
		// trace on /debug/flight. Only whole lookups annotate that
		// histogram — serves and SQL have different shapes.
		lookupHist := metrics.Default.IntHistogram("peer.lookup_us")
		lp.flight = flight.New(flight.Config{
			SlowThreshold: cfg.SlowThreshold,
			Keep:          cfg.FlightKeep,
			Exemplar: func(kind string, us, id uint64) {
				if kind == flight.KindLookup {
					lookupHist.SetExemplar(us, flight.TraceIDString(id))
				}
			},
		})
		p.SetFlight(lp.flight)
	}
	if cfg.DataDir != "" {
		// Recover before serving and before joining: the store must hold
		// its durable descriptors when the first request or anti-entropy
		// digest arrives. The journal attaches only after replay, so
		// recovery does not re-journal itself.
		mode, err := wal.ParseFsyncMode(orDefault(cfg.Fsync, "always"))
		if err != nil {
			ln.Close()
			lp.caller.Close()
			return nil, err
		}
		opts := wal.Options{
			Dir:          cfg.DataDir,
			Fsync:        mode,
			CompactEvery: cfg.CompactEvery,
			ShipRetain:   cfg.ShipRetain,
			OnRetainDrop: func(follower string, c wal.Cursor) {
				// Satellite of the shipping protocol: the operator should
				// know when the retention budget, not the follower's own
				// pace, forces a full reseed.
				log.Printf("p2prange: %s: ship-retain budget dropped follower %s at %s; it will reseed from the segment",
					addr, follower, c)
				obs.Events.Emitf(obs.SevWarn, "wal", "%s retention budget dropped follower %s at %s: it must reseed from the segment", addr, follower, c)
			},
		}
		// Seal events come from this hook so the wal package itself stays
		// free of the observability plane; the backup mirror (below)
		// chains onto the same hook.
		sealEvent := func(seq uint64) {
			obs.Events.Emitf(obs.SevInfo, "wal", "%s sealed segment %016x: wal folded, replay debt cleared", addr, seq)
		}
		opts.OnSeal = sealEvent
		if cfg.BackupTo != "" {
			var backupMu sync.Mutex
			opts.OnSeal = func(seq uint64) {
				sealEvent(seq)
				// Compaction calls OnSeal inline; mirror in the background
				// so a slow backup disk never stalls the append path.
				go func() {
					backupMu.Lock()
					defer backupMu.Unlock()
					lg := lp.wal // set before serving starts; OnSeal fires only after
					if lg == nil {
						return
					}
					if seq, n, err := lg.BackupSegment(cfg.BackupTo); err != nil {
						log.Printf("p2prange: %s: segment backup to %s: %v", addr, cfg.BackupTo, err)
					} else if n > 0 {
						log.Printf("p2prange: %s: backed up segment %d (%d bytes) to %s", addr, seq, n, cfg.BackupTo)
					}
				}()
			}
		}
		if cfg.MemLimit > 0 {
			// Bounded + durable: serve the working set from disk. The
			// sealed segment becomes the store's read-through tier; the
			// OnSegment hook runs before WAL replay so replayed records
			// land as pinned overlay entries, and each compaction swaps
			// the new segment in.
			st := p.Store()
			opts.ReadThrough = true
			opts.OnSegment = func(r *wal.SegmentReader) error {
				if r == nil {
					st.SetSegments(nil)
				} else {
					st.SetSegments(r)
				}
				return nil
			}
			opts.OnSwap = func(r *wal.SegmentReader, upto uint64) {
				st.SwapSegments(r, upto)
			}
		}
		lg, rec, err := wal.Open(opts, wal.StoreRestorer(p.Store()))
		if err != nil {
			ln.Close()
			lp.caller.Close()
			return nil, err
		}
		p.Store().SetJournal(lg)
		p.AttachDurability(lg)
		lp.wal = lg
		lp.recovery = rec
	}

	// The cluster event journal: every peer keeps the bounded in-process
	// ring; a peer with a directory also makes it durable (events.log,
	// same framing discipline as the WAL). Open before serving so the
	// boot events below are captured, and preload the previous boots'
	// tail so /debug/events shows what happened before the restart.
	if evDir := orDefault(cfg.EventsDir, cfg.DataDir); evDir != "" {
		if err := os.MkdirAll(evDir, 0o755); err != nil {
			lp.closeEarly(ln)
			return nil, err
		}
		elog, past, err := obs.OpenEventLog(filepath.Join(evDir, "events.log"))
		if err != nil {
			lp.closeEarly(ln)
			return nil, err
		}
		obs.Events.Preload(past)
		lp.events = elog
		lp.eventsDetach = obs.Events.AddSink(elog.Append)
	}
	if lp.wal != nil {
		rec := lp.recovery
		if rec.TornTail || rec.DroppedFiles > 0 {
			obs.Events.Emitf(obs.SevWarn, "peer", "%s recovered with damage: torn_tail=%v dropped_files=%d (replayed %d wal record(s) over %d from segment %016x)",
				addr, rec.TornTail, rec.DroppedFiles, rec.Replayed, rec.SegmentRecords, rec.SegmentSeq)
		} else if rec.SegmentRecords > 0 || rec.Replayed > 0 {
			obs.Events.Emitf(obs.SevInfo, "peer", "%s recovered %d descriptor(s) from segment %016x plus %d wal record(s) in %s",
				addr, rec.SegmentRecords, rec.SegmentSeq, rec.Replayed, rec.Elapsed.Round(time.Millisecond))
		}
	}

	// Log shipping. Every peer answers the receiving half (pushed record
	// batches from a replica owner); with a WAL it also serves the full
	// protocol — follower subscriptions, entry streams, snapshot seeds.
	var commit func() error
	if lp.wal != nil {
		commit = lp.wal.Commit
	}
	lp.shipSvc = ship.NewService(ship.ServiceConfig{
		Log:    lp.wal,
		Apply:  ship.PutApplier(p.Store()),
		Commit: commit,
	})
	p.RegisterAux(lp.shipSvc.Handle)
	if lp.wal != nil && cfg.Replicas > 0 {
		// Replica anti-entropy ships the WAL delta to full-replica
		// successors; digest exchange remains the repair of last resort.
		// Only records this peer owns ship onward — replicated copies
		// must not cascade replica-to-replica.
		pusher := ship.NewPusher(lp.wal, addr, func(r wal.Record) bool {
			return p.Node().Owns(uint32(r.ID))
		})
		p.SetShipSync(func(succ chord.Ref) (int, bool) {
			return pusher.SyncTo(succ.Addr, func(req any) (any, error) {
				return p.Call(succ, req)
			})
		})
		lp.pusher = pusher
	}
	if cfg.Follow != "" {
		owner := cfg.Follow
		lp.follower = ship.NewFollower(ship.FollowerConfig{
			Owner: owner,
			Self:  addr,
			Call:  func(req any) (any, error) { return caller.Call(owner, req) },
			// Full-fidelity apply — puts, evicts, arc drops — through the
			// store with its journal attached, so the follower's own WAL
			// records exactly what a local recovery would replay.
			Apply:  wal.StoreRestorer(p.Store()),
			Reset:  func() error { p.Store().ExtractArc(0, 0); return nil },
			Commit: commit,
			Dir:    cfg.DataDir,
		})
	}

	lp.server = transport.ServeTCPTraced(ln, p.HandleTraced)
	if bootstrap != "" {
		if err := p.Node().Join(bootstrap); err != nil {
			lp.Close()
			return nil, err
		}
	}
	mcfg := cfg.Stabilize
	if cfg.Replicas > 0 && mcfg.Repair == nil {
		// Anti-entropy rides the maintenance loop: each round re-creates
		// replica copies lost to churn since the last one.
		mcfg.Repair = func() { p.RepairReplicas() }
	}
	lp.maintainer = chord.StartMaintainer(p.Node(), mcfg)
	if lp.follower != nil {
		lp.follower.Run()
	}
	if lp.wal != nil && cfg.BackupTo != "" {
		// Startup backup: whatever segment recovery booted from is
		// mirrored even if the process never folds again.
		if seq, n, err := lp.wal.BackupSegment(cfg.BackupTo); err != nil {
			log.Printf("p2prange: %s: segment backup to %s: %v", addr, cfg.BackupTo, err)
		} else if n > 0 {
			log.Printf("p2prange: %s: backed up segment %d (%d bytes) to %s", addr, seq, n, cfg.BackupTo)
		}
	}
	return lp, nil
}

// closeEarly tears down a partially started peer when StartPeer fails
// after the listener and caller exist but before serving begins.
func (lp *LivePeer) closeEarly(ln net.Listener) {
	ln.Close()
	lp.caller.Close()
	if lp.wal != nil {
		lp.wal.Close()
	}
}

// Addr returns the peer's listen address (how other peers reach it).
func (lp *LivePeer) Addr() string { return lp.peer.Addr() }

// Ref returns the peer's chord identity.
func (lp *LivePeer) Ref() chord.Ref { return lp.peer.Ref() }

// Lookup runs the approximate range lookup from this peer. Routing
// failures (e.g. a peer departed and fingers are stale) are retried with
// backoff while the stabilization protocol repairs the ring.
func (lp *LivePeer) Lookup(rel, attribute string, q Range, cache bool) (Match, bool, error) {
	var lastErr error
	backoff := 100 * time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		lr, err := lp.lookupRecorded(rel, attribute, q, cache)
		if err == nil {
			return lr.Match, lr.Found, nil
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
	return Match{}, false, lastErr
}

// lookupRecorded runs one lookup protocol attempt under the flight
// recorder: an always-sampled root span whose stitched tree — probes,
// batches, grafted remote serve spans — is the one LookupTraced builds,
// retained only if the tail-based keep policy finds the outcome
// interesting. With the recorder off this is exactly peer.Lookup's
// nil-span fast path: zero extra allocations, zero extra RPCs.
func (lp *LivePeer) lookupRecorded(rel, attribute string, q Range, cache bool) (peer.LookupResult, error) {
	rec := lp.flight
	if !rec.On() {
		return lp.peer.Lookup(rel, attribute, q, cache)
	}
	sp := rec.Start(fmt.Sprintf("lookup %s.%s %s from %s", rel, attribute, q, lp.Addr()))
	lr, err := lp.peer.LookupTraced(rel, attribute, q, cache, sp)
	rec.Finish(flight.KindLookup, sp, sumHops(lr.Hops), err)
	return lr, err
}

// sumHops totals the per-probe chord path lengths for the hop-heavy
// keep policy.
func sumHops(hops []int) int {
	total := 0
	for _, h := range hops {
		total += h
	}
	return total
}

// LookupOnce runs a single approximate range lookup with no
// stabilization-retry loop: a routing failure surfaces immediately.
// Load generators use it so each attempt costs exactly one protocol
// run and failures land in the error budget instead of a backoff sleep.
func (lp *LivePeer) LookupOnce(rel, attribute string, q Range, cache bool) (Match, bool, error) {
	lr, err := lp.lookupRecorded(rel, attribute, q, cache)
	if err != nil {
		return Match{}, false, err
	}
	return lr.Match, lr.Found, nil
}

// Publish stores a partition descriptor held by this peer under its l
// identifiers. Like lookups, each publish runs under the flight
// recorder, so a slow or failed publish leaves a retained trace.
func (lp *LivePeer) Publish(info PartitionInfo) error {
	rec := lp.flight
	if !rec.On() {
		_, err := lp.peer.Publish(info)
		return err
	}
	sp := rec.Start(fmt.Sprintf("publish %s.%s %s from %s", info.Relation, info.Attribute, info.Range, lp.Addr()))
	hops, err := lp.peer.PublishTraced(info, sp)
	rec.Finish(flight.KindPublish, sp, sumHops(hops), err)
	return err
}

// AddPartition materializes partition data locally so other peers can
// fetch it; call Publish with its descriptor to make it discoverable.
func (lp *LivePeer) AddPartition(rel *Relation, attribute string, rg Range) error {
	part, err := rel.Partition(attribute, rg)
	if err != nil {
		return err
	}
	lp.peer.AddPartition(part)
	return nil
}

// Fetch retrieves the tuples of a matched partition from its holder.
func (lp *LivePeer) Fetch(m Match) (*Relation, error) { return lp.peer.FetchData(m) }

// StoredPartitions reports how many descriptors this peer's buckets hold.
func (lp *LivePeer) StoredPartitions() int { return lp.peer.Store().Len() }

// Successor exposes the chord successor for health checks.
func (lp *LivePeer) Successor() chord.Ref { return lp.peer.Node().Successor() }

// RouteStats snapshots the peer's failure counters: lookups, failed
// lookups, reroutes around dead nodes, and transport retries.
func (lp *LivePeer) RouteStats() metrics.RouteSnapshot { return lp.stats.Snapshot() }

// SigStats snapshots the peer's signature-pipeline counters (cache hits,
// incremental extensions, misses, evictions).
func (lp *LivePeer) SigStats() metrics.SigSnapshot { return lp.peer.SigStats() }

// FaultInjector returns the fault-injection layer when LiveConfig.Fault
// was set, for toggling outages at runtime; nil otherwise.
func (lp *LivePeer) FaultInjector() *transport.FaultCaller { return lp.fault }

// Stable reports whether the peer's ring links look settled: predecessor
// known and successor set. A self-successor with no predecessor is a
// singleton ring — the node IS the whole ring and answers lookups, so it
// counts as stable (the stabilize protocol never self-notifies, so a
// lone bootstrap peer would otherwise stay "not ready" forever).
// peerd's /healthz readiness gates on it.
func (lp *LivePeer) Stable() bool {
	succ := lp.peer.Node().Successor()
	if succ.IsZero() {
		return false
	}
	if succ.ID == lp.Ref().ID {
		return true
	}
	_, hasPred := lp.peer.Node().Predecessor()
	return hasPred
}

// WaitStable blocks until the peer's successor and predecessor links look
// settled (predecessor known and successor reachable) or the timeout
// elapses. Convenience for tests and demos.
func (lp *LivePeer) WaitStable(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if lp.Stable() {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

// Status assembles the peer's self-description for the cluster
// observability plane: identity, ring links, readiness, load, and the
// process-local metrics snapshot. peerd serves it as JSON at /status;
// rangetop polls it across the cluster.
func (lp *LivePeer) Status() obs.NodeStatus {
	st := obs.NodeStatus{
		Addr:      lp.Addr(),
		Ref:       lp.Ref().String(),
		Successor: lp.Successor().String(),
		Stable:    lp.Stable(),
		Stored:    lp.peer.Store().Len(),
		Served:    lp.peer.ServedProbes(),
		Metrics:   metrics.Default.Snapshot(),
	}
	if ws, ok := lp.Durable(); ok {
		st.Durable = &obs.DurableStatus{
			Dir:          ws.Dir,
			Fsync:        ws.Fsync,
			ActiveSeq:    ws.ActiveSeq,
			SegmentSeq:   ws.SegmentSeq,
			Appended:     ws.Appended,
			Durable:      ws.Durable,
			SinceFold:    ws.SinceFold,
			Err:          ws.Err,
			ReadThrough:  lp.recovery.ReadThrough,
			IndexRebuilt: lp.recovery.IndexRebuilt,
		}
		if lp.recovery.ReadThrough {
			st.Durable.Resident = lp.peer.Store().MemLen()
		}
		du := lp.wal.Usage()
		st.Durable.WALBytes = du.WALBytes
		st.Durable.SegmentBytes = du.SegmentBytes
		st.Durable.RetainedBytes = du.RetainedBytes
		st.Durable.OldestWALSeq = du.OldestWALSeq
		for _, f := range lp.shipSvc.Followers() {
			st.Durable.Followers = append(st.Durable.Followers, obs.FollowerStatus{
				Addr:     f.Addr,
				Seq:      f.Cursor.Seq,
				Off:      f.Cursor.Off,
				LagBytes: f.LagBytes,
				Snapshot: f.Snapshot,
			})
		}
	}
	if f := lp.flight; f.On() {
		fs := f.Stats()
		st.Flight = &obs.FlightStatus{
			Finished:        fs.Finished,
			KeptSlow:        fs.KeptSlow,
			KeptErrored:     fs.KeptErrored,
			KeptHopHeavy:    fs.KeptHopHeavy,
			SlowThresholdUS: fs.SlowThresholdUS,
			WorstUS:         fs.WorstUS,
			WorstName:       fs.WorstName,
			WorstTraceID:    fs.WorstTraceID,
		}
	}
	total, warns, errs := obs.Events.Counts()
	st.Events = &obs.EventsStatus{
		Total:   total,
		Warns:   warns,
		Errors:  errs,
		Durable: lp.events != nil,
		// Enough lines for rangetop's events pane without bloating every
		// /status poll; /debug/events serves the full ring.
		Recent: obs.Events.Recent(8),
	}
	if lp.follower != nil {
		fs := lp.follower.Stats()
		st.Ship = &obs.ShipStatus{
			Owner:     fs.Owner,
			State:     fs.State,
			Seq:       fs.Cursor.Seq,
			Off:       fs.Cursor.Off,
			Applied:   fs.Applied,
			Snapshots: fs.Snapshots,
			Resets:    fs.Resets,
			LastError: fs.LastError,
		}
	}
	return st
}

// Connect starts an ephemeral query peer: it listens on an OS-assigned
// local port, joins the ring via bootstrap, and waits for its links to
// settle. Use it for interactive clients (rangeql -connect) that want to
// issue lookups and SQL against a running cluster; Leave (or Close) when
// done. The configuration must carry the ring's shared scheme parameters.
func Connect(bootstrap string, cfg LiveConfig) (*LivePeer, error) {
	if bootstrap == "" {
		return nil, errors.New("p2prange: Connect requires a bootstrap address")
	}
	lp, err := StartPeer("127.0.0.1:0", bootstrap, cfg)
	if err != nil {
		return nil, err
	}
	if !lp.WaitStable(10 * time.Second) {
		lp.Close()
		return nil, fmt.Errorf("p2prange: ring via %s did not stabilize", bootstrap)
	}
	return lp, nil
}

// LookupTraced is Lookup returning the stitched span tree of the whole
// protocol run: the signature-cache outcome, one child span per probe
// with its chord hops, and — over TCP — the serve spans executed on the
// remote peers, grafted back with per-peer attribution.
func (lp *LivePeer) LookupTraced(rel, attribute string, q Range, cache bool) (Match, bool, *Trace, error) {
	sp := trace.New(fmt.Sprintf("lookup %s.%s %s from %s", rel, attribute, q, lp.Addr()))
	lr, err := lp.peer.LookupTraced(rel, attribute, q, cache, sp)
	sp.End()
	// Explicitly traced runs are recorded too: the root name above is
	// byte-identical to lookupRecorded's, so a kept flight entry and a
	// `rangeql -trace` of the same query render the same tree.
	lp.flight.Finish(flight.KindLookup, sp, sumHops(lr.Hops), err)
	if err != nil {
		return Match{}, false, sp, err
	}
	return lr.Match, lr.Found, sp, nil
}

// AddBase registers a base relation at this peer for SQL execution with
// source fallback, mirroring System.AddBase for live deployments.
func (lp *LivePeer) AddBase(r *Relation) error {
	if lp.schema == nil {
		return errors.New("p2prange: LiveConfig.Schema required for relational data")
	}
	if _, ok := lp.schema.Relation(r.Schema.Name); !ok {
		return fmt.Errorf("p2prange: relation %q not in the global schema", r.Schema.Name)
	}
	for _, col := range r.Schema.Columns {
		if col.Type != relation.TString {
			if err := r.BuildIndex(col.Name); err != nil {
				return err
			}
		}
	}
	lp.mu.Lock()
	lp.base[r.Schema.Name] = r
	lp.mu.Unlock()
	return nil
}

// Query parses, plans, and executes a restricted SQL SELECT from this
// peer: selection leaves resolve through the DHT (with local base
// fallback when AddBase registered the relation), joins and projection
// run here.
func (lp *LivePeer) Query(sql string) (*QueryResult, error) {
	res, _, err := lp.runQuery(sql, false)
	return res, err
}

// QueryTraced is Query returning the span tree of the execution,
// including the serve spans of every remote peer that participated.
func (lp *LivePeer) QueryTraced(sql string) (*QueryResult, *Trace, error) {
	return lp.runQuery(sql, true)
}

func (lp *LivePeer) runQuery(sql string, traced bool) (*QueryResult, *Trace, error) {
	if lp.schema == nil {
		return nil, nil, errors.New("p2prange: LiveConfig.Schema required for SQL queries")
	}
	q, err := query.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	plan, err := query.BuildPlan(q, lp.schema)
	if err != nil {
		return nil, nil, err
	}
	lp.mu.RLock()
	base := make(map[string]*relation.Relation, len(lp.base))
	for name, r := range lp.base {
		base[name] = r
	}
	lp.mu.RUnlock()
	src := &peer.DataSource{Peer: lp.peer}
	if len(base) > 0 {
		src.Base = query.NewRelationSource(base)
	}
	var sp *Trace
	switch {
	case traced:
		sp = trace.New(fmt.Sprintf("query from %s", lp.Addr()))
	case lp.flight.On():
		sp = lp.flight.Start(fmt.Sprintf("query from %s", lp.Addr()))
	}
	// Only executions with no span share the peer's singleflight
	// (identical concurrent leaf fetches collapse into one DHT lookup).
	// Span-built runs — explicit traces and flight-recorded queries —
	// stay unshared so every retained tree reflects its own query's
	// work: the recorder trades the coalescer's dedup for attributable
	// trees. Operators who want the dedup back run with -flight-off.
	execSrc := query.Source(src)
	if sp == nil {
		execSrc = lp.coalesce.Bind(src)
	}
	res, err := query.ExecuteTraced(plan, lp.schema, execSrc, sp)
	sp.End()
	lp.flight.Finish(flight.KindQuery, sp, -1, err)
	return res, sp, err
}

// ReclaimArc pulls the buckets this peer now owns from its successor;
// call it after joining once the ring has stabilized so descriptors
// stored before the join are found at their new owner.
func (lp *LivePeer) ReclaimArc() error { return lp.peer.ReclaimArc() }

// Leave gracefully departs: stored buckets are handed to the successor,
// ring neighbors are re-linked, and the peer shuts down.
func (lp *LivePeer) Leave() error {
	succ := lp.peer.Node().Successor()
	var handoffErr error
	if succ.ID != lp.peer.Node().ID() {
		handoffErr = lp.peer.HandoffTo(succ)
	}
	if err := lp.peer.Node().Leave(); err != nil && handoffErr == nil {
		handoffErr = err
	}
	lp.Close()
	return handoffErr
}

// Close stops maintenance, the server, and client connections without the
// graceful hand-off, then checkpoints and closes the write-ahead log (if
// any) so the next boot recovers from a sealed segment alone.
func (lp *LivePeer) Close() {
	if lp.follower != nil {
		lp.follower.Stop()
	}
	if lp.maintainer != nil {
		lp.maintainer.Stop()
	}
	if lp.server != nil {
		lp.server.Close()
	}
	lp.caller.Close()
	if lp.wal != nil {
		lp.wal.Close()
	}
	// The durable event sink unhooks before the log closes so a
	// concurrent Emitf cannot race an append against the closed file.
	if lp.eventsDetach != nil {
		lp.eventsDetach()
	}
	if lp.events != nil {
		lp.events.Close()
	}
}

// Recovery reports what boot-time replay restored (zero value for
// memory-only peers): the segment and WAL records applied, whether a
// torn tail was truncated, and how long recovery took.
func (lp *LivePeer) Recovery() wal.Recovery { return lp.recovery }

// Flight returns the peer's flight recorder — nil (the disabled
// recorder) when LiveConfig.FlightOff was set. peerd's /debug/slow and
// /debug/flight and rangeql's \slow read retained entries through it.
func (lp *LivePeer) Flight() *flight.Recorder { return lp.flight }

// EventsDurable reports whether the peer's cluster event journal also
// lands in a durable events.log (and any latched write error on it).
func (lp *LivePeer) EventsDurable() (bool, error) {
	if lp.events == nil {
		return false, nil
	}
	return true, lp.events.Err()
}

// Durable reports the live WAL state, and whether durability is on.
func (lp *LivePeer) Durable() (wal.Stats, bool) {
	if lp.wal == nil {
		return wal.Stats{}, false
	}
	return lp.wal.Stats(), true
}

// Descriptor builds a PartitionInfo for data held at this peer.
func (lp *LivePeer) Descriptor(rel, attribute string, rg Range) PartitionInfo {
	return store.Partition{Relation: rel, Attribute: attribute, Range: rg, Holder: lp.Addr()}
}
