package p2prange

import (
	"fmt"
	"math/rand"
	"net"
	"time"

	"p2prange/internal/chord"
	"p2prange/internal/metrics"
	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/store"
	"p2prange/internal/transport"
)

// LiveConfig configures a real TCP peer. All peers of one ring must use
// the same Family, K, L, and SchemeSeed, or their identifiers will not
// line up; SchemeSeed is therefore an explicit, shared parameter.
type LiveConfig struct {
	// Family, K, L parameterize the shared LSH scheme (defaults:
	// ApproxMinWise, 20, 5).
	Family Family
	K, L   int
	// SchemeSeed derives the shared key material (default 1).
	SchemeSeed int64
	// Measure is the bucket match measure (zero value MatchJaccard).
	Measure Measure
	// Schema enables partition data serving.
	Schema *Schema
	// Replicas pushes each stored descriptor to that many ring successors.
	// Setting it enables the replica subsystem: versioned copies, periodic
	// anti-entropy repair (cadence via Stabilize.RepairEvery), and
	// hot-bucket promotion.
	Replicas int
	// LoadAware routes each bucket probe to the least-loaded live replica
	// instead of always the owner. Effective only with Replicas > 0.
	LoadAware bool
	// HotReplicas is the replica-set size for popular buckets (owner
	// included; default 2*(Replicas+1)).
	HotReplicas int
	// HotThreshold is the decayed probe count promoting a bucket to
	// HotReplicas copies (default replica.DefaultHotThreshold).
	HotThreshold uint64
	// Stabilize controls the chord maintenance cadence; zero values use
	// chord defaults.
	Stabilize chord.MaintainerConfig
	// Retry controls transport-level retries. Zero values mean 3 attempts
	// with 25ms base backoff; set DisableRetry to turn retries off.
	Retry        transport.RetryConfig
	DisableRetry bool
	// DisableRerouting turns off failure-aware chord routing (lookups fail
	// on the first unreachable hop instead of detouring via successor
	// lists). Exposed for fault-model ablations.
	DisableRerouting bool
	// Fault, when non-nil, injects deterministic faults (drops, delays,
	// outages) between this peer and the network — for resilience testing
	// on real TCP clusters.
	Fault *transport.FaultConfig
	// SigCache bounds this peer's signature cache (hashed ranges memoized
	// and extended across lookups); 0 disables the cache — batched
	// evaluation still applies. Purely local, so peers of one ring may
	// differ.
	SigCache int
	// HashWorkers parallelizes signing across the k*l hash functions for
	// large ranges; 0 or 1 keeps signing serial.
	HashWorkers int
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.K <= 0 {
		c.K = minhash.DefaultK
	}
	if c.L <= 0 {
		c.L = minhash.DefaultL
	}
	if c.SchemeSeed == 0 {
		c.SchemeSeed = 1
	}
	return c
}

// LivePeer is one real peer: a TCP server, a chord node with background
// stabilization, and the partition store/protocol.
type LivePeer struct {
	peer       *peer.Peer
	server     *transport.TCPServer
	caller     *transport.TCPCaller
	maintainer *chord.Maintainer
	stats      *metrics.RouteStats
	fault      *transport.FaultCaller
}

// StartPeer launches a live peer listening on listenAddr (host:port; the
// OS picks a port for ":0"). If bootstrap is non-empty the peer joins the
// ring that peer belongs to; otherwise it starts a new one-node ring.
func StartPeer(listenAddr, bootstrap string, cfg LiveConfig) (*LivePeer, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("p2prange: listen %s: %w", listenAddr, err)
	}
	addr := ln.Addr().String()

	raw, err := minhash.NewScheme(cfg.Family, cfg.K, cfg.L, rand.New(rand.NewSource(cfg.SchemeSeed)))
	if err != nil {
		ln.Close()
		return nil, err
	}
	stats := &metrics.RouteStats{}
	tcp := transport.NewTCPCaller()
	caller := transport.Caller(tcp)
	var fault *transport.FaultCaller
	if cfg.Fault != nil {
		fault = transport.NewFaultCaller(caller, *cfg.Fault)
		caller = fault
	}
	if !cfg.DisableRetry {
		rc := cfg.Retry
		if rc.BaseDelay <= 0 {
			rc.BaseDelay = 25 * time.Millisecond
		}
		if rc.Seed == 0 {
			rc.Seed = int64(chord.HashAddr(addr))
		}
		rc.Stats = stats
		caller = transport.NewRetryCaller(caller, rc)
	}
	p, err := peer.New(addr, caller, peer.Config{
		Scheme:       raw.Compiled(),
		Measure:      cfg.Measure,
		Schema:       cfg.Schema,
		Replicas:     cfg.Replicas,
		LoadAware:    cfg.LoadAware,
		HotReplicas:  cfg.HotReplicas,
		HotThreshold: cfg.HotThreshold,
		SigCache:     cfg.SigCache,
		HashWorkers:  cfg.HashWorkers,
		Chord: chord.Config{
			DisableRerouting: cfg.DisableRerouting,
			Stats:            stats,
		},
	})
	if err != nil {
		ln.Close()
		return nil, err
	}
	lp := &LivePeer{
		peer:   p,
		caller: tcp,
		server: transport.ServeTCP(ln, p.Handle),
		stats:  stats,
		fault:  fault,
	}
	if bootstrap != "" {
		if err := p.Node().Join(bootstrap); err != nil {
			lp.Close()
			return nil, err
		}
	}
	mcfg := cfg.Stabilize
	if cfg.Replicas > 0 && mcfg.Repair == nil {
		// Anti-entropy rides the maintenance loop: each round re-creates
		// replica copies lost to churn since the last one.
		mcfg.Repair = func() { p.RepairReplicas() }
	}
	lp.maintainer = chord.StartMaintainer(p.Node(), mcfg)
	return lp, nil
}

// Addr returns the peer's listen address (how other peers reach it).
func (lp *LivePeer) Addr() string { return lp.peer.Addr() }

// Ref returns the peer's chord identity.
func (lp *LivePeer) Ref() chord.Ref { return lp.peer.Ref() }

// Lookup runs the approximate range lookup from this peer. Routing
// failures (e.g. a peer departed and fingers are stale) are retried with
// backoff while the stabilization protocol repairs the ring.
func (lp *LivePeer) Lookup(rel, attribute string, q Range, cache bool) (Match, bool, error) {
	var lastErr error
	backoff := 100 * time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		lr, err := lp.peer.Lookup(rel, attribute, q, cache)
		if err == nil {
			return lr.Match, lr.Found, nil
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
	return Match{}, false, lastErr
}

// Publish stores a partition descriptor held by this peer under its l
// identifiers.
func (lp *LivePeer) Publish(info PartitionInfo) error {
	_, err := lp.peer.Publish(info)
	return err
}

// AddPartition materializes partition data locally so other peers can
// fetch it; call Publish with its descriptor to make it discoverable.
func (lp *LivePeer) AddPartition(rel *Relation, attribute string, rg Range) error {
	part, err := rel.Partition(attribute, rg)
	if err != nil {
		return err
	}
	lp.peer.AddPartition(part)
	return nil
}

// Fetch retrieves the tuples of a matched partition from its holder.
func (lp *LivePeer) Fetch(m Match) (*Relation, error) { return lp.peer.FetchData(m) }

// StoredPartitions reports how many descriptors this peer's buckets hold.
func (lp *LivePeer) StoredPartitions() int { return lp.peer.Store().Len() }

// Successor exposes the chord successor for health checks.
func (lp *LivePeer) Successor() chord.Ref { return lp.peer.Node().Successor() }

// RouteStats snapshots the peer's failure counters: lookups, failed
// lookups, reroutes around dead nodes, and transport retries.
func (lp *LivePeer) RouteStats() metrics.RouteSnapshot { return lp.stats.Snapshot() }

// SigStats snapshots the peer's signature-pipeline counters (cache hits,
// incremental extensions, misses, evictions).
func (lp *LivePeer) SigStats() metrics.SigSnapshot { return lp.peer.SigStats() }

// FaultInjector returns the fault-injection layer when LiveConfig.Fault
// was set, for toggling outages at runtime; nil otherwise.
func (lp *LivePeer) FaultInjector() *transport.FaultCaller { return lp.fault }

// WaitStable blocks until the peer's successor and predecessor links look
// settled (predecessor known and successor reachable) or the timeout
// elapses. Convenience for tests and demos.
func (lp *LivePeer) WaitStable(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		succ := lp.peer.Node().Successor()
		_, hasPred := lp.peer.Node().Predecessor()
		if hasPred && !succ.IsZero() {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

// ReclaimArc pulls the buckets this peer now owns from its successor;
// call it after joining once the ring has stabilized so descriptors
// stored before the join are found at their new owner.
func (lp *LivePeer) ReclaimArc() error { return lp.peer.ReclaimArc() }

// Leave gracefully departs: stored buckets are handed to the successor,
// ring neighbors are re-linked, and the peer shuts down.
func (lp *LivePeer) Leave() error {
	succ := lp.peer.Node().Successor()
	var handoffErr error
	if succ.ID != lp.peer.Node().ID() {
		handoffErr = lp.peer.HandoffTo(succ)
	}
	if err := lp.peer.Node().Leave(); err != nil && handoffErr == nil {
		handoffErr = err
	}
	lp.Close()
	return handoffErr
}

// Close stops maintenance, the server, and client connections without the
// graceful hand-off.
func (lp *LivePeer) Close() {
	if lp.maintainer != nil {
		lp.maintainer.Stop()
	}
	lp.server.Close()
	lp.caller.Close()
}

// Descriptor builds a PartitionInfo for data held at this peer.
func (lp *LivePeer) Descriptor(rel, attribute string, rg Range) PartitionInfo {
	return store.Partition{Relation: rel, Attribute: attribute, Range: rg, Holder: lp.Addr()}
}
