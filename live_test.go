package p2prange

import (
	"testing"
	"time"

	"p2prange/internal/chord"
	"p2prange/internal/relation"
)

// liveRing starts n real TCP peers on loopback with fast stabilization
// and waits for convergence.
func liveRing(t *testing.T, n int) []*LivePeer {
	t.Helper()
	cfg := LiveConfig{
		K: 4, L: 3, SchemeSeed: 77,
		Measure: MatchContainment,
		Schema:  relation.MedicalSchema(),
		Stabilize: chord.MaintainerConfig{
			StabilizeEvery:        20 * time.Millisecond,
			FixFingersEvery:       5 * time.Millisecond,
			CheckPredecessorEvery: 50 * time.Millisecond,
		},
	}
	boot, err := StartPeer("127.0.0.1:0", "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	peers := []*LivePeer{boot}
	t.Cleanup(boot.Close)
	for i := 1; i < n; i++ {
		p, err := StartPeer("127.0.0.1:0", boot.Addr(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		peers = append(peers, p)
	}
	deadline := time.Now().Add(15 * time.Second)
	for _, p := range peers {
		if !p.WaitStable(time.Until(deadline)) {
			t.Fatalf("peer %s did not stabilize", p.Ref())
		}
	}
	// Give fix-fingers a moment to cycle after the last join.
	time.Sleep(300 * time.Millisecond)
	return peers
}

func TestLiveLookupAndFetch(t *testing.T) {
	peers := liveRing(t, 5)

	rels, err := relation.GenerateMedical(relation.MedicalConfig{
		Patients: 100, Physicians: 5, Diagnoses: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	holder := peers[2]
	rg, _ := NewRange(30, 50)
	if err := holder.AddPartition(rels["Patient"], "age", rg); err != nil {
		t.Fatal(err)
	}
	if err := holder.Publish(holder.Descriptor("Patient", "age", rg)); err != nil {
		t.Fatal(err)
	}

	querier := peers[4]
	similar, _ := NewRange(30, 49)
	m, found, err := querier.Lookup("Patient", "age", similar, false)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("similar range not found over TCP")
	}
	if m.Partition.Holder != holder.Addr() {
		t.Errorf("holder = %s, want %s", m.Partition.Holder, holder.Addr())
	}
	data, err := querier.Fetch(m)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := rels["Patient"].SelectRange("age", rg)
	if data.Len() != want.Len() {
		t.Errorf("fetched %d tuples, want %d", data.Len(), want.Len())
	}
}

func TestLiveLeaveHandsOffBuckets(t *testing.T) {
	peers := liveRing(t, 4)
	rg, _ := NewRange(10, 90)
	if _, _, err := peers[0].Lookup("R", "a", rg, true); err != nil {
		t.Fatal(err)
	}
	total := func(ps []*LivePeer) int {
		n := 0
		for _, p := range ps {
			n += p.StoredPartitions()
		}
		return n
	}
	before := total(peers)
	if before == 0 {
		t.Fatal("nothing stored")
	}
	// Leave with whichever peer holds descriptors (or any peer).
	leaver := peers[1]
	rest := []*LivePeer{peers[0], peers[2], peers[3]}
	if err := leaver.Leave(); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if got := total(rest); got != before {
		t.Errorf("descriptors after leave = %d, want %d (handoff lost data)", got, before)
	}
	// The departed descriptors remain findable once the ring repairs.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, found, err := rest[0].Lookup("R", "a", rg, false)
		if err == nil && found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("descriptor unreachable after leave: found=%v err=%v", found, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func TestLiveReclaimArc(t *testing.T) {
	cfg := LiveConfig{
		K: 4, L: 3, SchemeSeed: 78,
		Stabilize: chord.MaintainerConfig{
			StabilizeEvery:        20 * time.Millisecond,
			FixFingersEvery:       5 * time.Millisecond,
			CheckPredecessorEvery: 50 * time.Millisecond,
		},
	}
	boot, err := StartPeer("127.0.0.1:0", "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer boot.Close()
	// Store everything at the bootstrap (one-node ring owns all).
	rg, _ := NewRange(5, 55)
	if _, _, err := boot.Lookup("R", "a", rg, true); err != nil {
		t.Fatal(err)
	}
	if boot.StoredPartitions() == 0 {
		t.Fatal("bootstrap stored nothing")
	}
	// A joiner reclaims its arc; total descriptors are conserved.
	joiner, err := StartPeer("127.0.0.1:0", boot.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	if !joiner.WaitStable(10*time.Second) || !boot.WaitStable(10*time.Second) {
		t.Fatal("two-node ring did not stabilize")
	}
	before := boot.StoredPartitions() + joiner.StoredPartitions()
	if err := joiner.ReclaimArc(); err != nil {
		t.Fatal(err)
	}
	after := boot.StoredPartitions() + joiner.StoredPartitions()
	if after != before {
		t.Errorf("reclaim changed descriptor count %d -> %d", before, after)
	}
	// Lookups still find the range from either peer.
	for _, p := range []*LivePeer{boot, joiner} {
		if _, found, err := p.Lookup("R", "a", rg, false); err != nil || !found {
			t.Errorf("lookup from %s after reclaim: found=%v err=%v", p.Ref(), found, err)
		}
	}
}

func TestSingletonPeerIsStable(t *testing.T) {
	// A lone bootstrap peer is the whole ring: it answers lookups and
	// must report ready (the stabilize protocol never self-notifies, so
	// it will never gain a predecessor — /healthz would 503 forever).
	boot, err := StartPeer("127.0.0.1:0", "", LiveConfig{
		K: 4, L: 3, SchemeSeed: 77,
		Measure: MatchContainment,
		Schema:  relation.MedicalSchema(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(boot.Close)
	if !boot.Stable() {
		t.Error("singleton peer reports not stable")
	}
	if st := boot.Status(); !st.Stable {
		t.Errorf("singleton /status not ready: %+v", st)
	}
}
