// Package p2prange is a peer-to-peer data sharing system that answers
// approximate range selection queries, reproducing "Approximate Range
// Selection Queries in Peer-to-Peer Systems" (Gupta, Agrawal, El Abbadi,
// CIDR 2003).
//
// Peers cache horizontal partitions of shared relations — the tuples
// selected by a range predicate on one attribute. A querying peer hashes
// its selection range with locality sensitive hashing (min-wise
// independent permutations) into l identifiers on a Chord ring, asks the
// peers owning those identifiers for their most similar cached partition,
// and answers the query from the best match (optionally falling back to
// the data source and caching the result for future queries).
//
// The package is a facade over the building blocks in internal/: exported
// aliases give external users direct access to the range, schema, and
// match types, while System wires peers, transport, hashing, and the
// relational layer together. Use New for an in-process (simulated)
// system, and StartPeer/Connect (live.go) for real TCP deployments.
package p2prange

import (
	"errors"
	"fmt"
	"math/rand"

	"p2prange/internal/chord"
	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/query"
	"p2prange/internal/rangeset"
	"p2prange/internal/relation"
	"p2prange/internal/sim"
	"p2prange/internal/store"
	"p2prange/internal/trace"
)

// Re-exported building blocks. Aliases (not wrappers) so values flow
// freely between the facade and the internal packages.
type (
	// Range is a closed integer interval [Lo, Hi], the value set of a
	// range predicate.
	Range = rangeset.Range
	// Match is a scored cached-partition candidate.
	Match = store.Match
	// PartitionInfo describes one cached partition (descriptor only).
	PartitionInfo = store.Partition
	// Measure selects the bucket-level match measure.
	Measure = store.Measure
	// Family identifies a hash-function family.
	Family = minhash.Family
	// Schema is the global relational schema.
	Schema = relation.Schema
	// Relation is a materialized set of tuples.
	Relation = relation.Relation
	// RelationSchema describes one relation.
	RelationSchema = relation.RelationSchema
	// Column is one attribute of a relation schema.
	Column = relation.Column
	// Tuple is one row.
	Tuple = relation.Tuple
	// Value is one typed cell.
	Value = relation.Value
	// QueryResult is the output of a SQL execution.
	QueryResult = query.Result
	// Trace is a per-query span tree: LookupTraced and QueryTraced return
	// one recording every hop, retry, detour, and cache outcome; render it
	// with Tree. See docs/OBSERVABILITY.md.
	Trace = trace.Span
)

// Hash-function families (paper Sec. 3.3 and 5.1).
const (
	// MinWise is the full min-wise independent bit permutation.
	MinWise = minhash.MinWise
	// ApproxMinWise is its cheap first-iteration approximation.
	ApproxMinWise = minhash.ApproxMinWise
	// Linear is pi(x) = a*x + b mod p.
	Linear = minhash.Linear
)

// Bucket match measures (paper Sec. 5.2).
const (
	// MatchJaccard scores candidates by Jaccard similarity.
	MatchJaccard = store.MatchJaccard
	// MatchContainment scores candidates by query containment.
	MatchContainment = store.MatchContainment
)

// NewRange builds a validated range.
func NewRange(lo, hi int64) (Range, error) { return rangeset.New(lo, hi) }

// Config assembles a System.
type Config struct {
	// Peers is the number of simulated peers (default 32).
	Peers int
	// Family selects the hash family (default ApproxMinWise, the paper's
	// recommended trade-off).
	Family Family
	// K and L are the LSH scheme parameters (default 20 and 5).
	K, L int
	// Measure is the bucket match measure. The zero value is
	// MatchJaccard, the measure the hash family is built on; pass
	// MatchContainment for the better recall Fig. 9 reports.
	Measure Measure
	// PadFrac expands query ranges before hashing (Fig. 10; default 0).
	PadFrac float64
	// Seed drives all randomness (default 1).
	Seed int64
	// Schema is required for SQL execution; optional for raw range use.
	Schema *Schema
	// UsePeerIndex enables the Section 5.3 per-peer index extension.
	UsePeerIndex bool
	// MultiAttribute lifts the paper's single-attribute-select
	// restriction (its stated future work): the most selective range per
	// relation resolves through the DHT, the rest filter locally.
	MultiAttribute bool
	// UseStats enables statistics-based join ordering over the registered
	// base relations (the paper's third future-work item).
	UseStats bool
	// Replicas pushes each stored descriptor to that many ring successors
	// so peer crashes do not lose cached descriptors. Setting it enables
	// the replica subsystem (versioned copies, anti-entropy repair,
	// hot-bucket promotion; see internal/replica).
	Replicas int
	// LoadAware routes each bucket probe to the least-loaded live replica
	// instead of always the owner. Effective only with Replicas > 0.
	LoadAware bool
	// HotReplicas is the replica-set size for popular buckets (owner
	// included; default 2*(Replicas+1)).
	HotReplicas int
	// HotThreshold is the decayed probe count promoting a bucket to
	// HotReplicas copies (default replica.DefaultHotThreshold).
	HotThreshold uint64
	// CacheCapacity bounds each peer's descriptor cache with LRU
	// eviction; 0 means unbounded (the paper's model).
	CacheCapacity int
	// SigCache bounds each peer's signature cache: hashed ranges are
	// memoized and padded/repeated probes extend or reuse earlier
	// signatures instead of rehashing. 0 disables the cache (batched
	// evaluation still applies).
	SigCache int
	// HashWorkers parallelizes signing across the k*l hash functions for
	// large ranges; 0 or 1 keeps signing serial (deterministic timing).
	HashWorkers int
}

func (c Config) withDefaults() Config {
	if c.Peers <= 0 {
		c.Peers = 32
	}
	if c.K <= 0 {
		c.K = minhash.DefaultK
	}
	if c.L <= 0 {
		c.L = minhash.DefaultL
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// System is an in-process deployment: N peers over the in-memory
// transport on a converged chord ring, sharing one LSH scheme.
type System struct {
	cfg     Config
	cluster *sim.Cluster
	scheme  *minhash.Scheme
	rng     *rand.Rand
	base    map[string]*Relation
	stats   *query.Stats // lazily built when Config.UseStats
}

// New builds a simulated system.
func New(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	raw, err := minhash.NewScheme(cfg.Family, cfg.K, cfg.L, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	scheme := raw.Compiled()
	cluster, err := sim.NewCluster(sim.ClusterConfig{
		N: cfg.Peers,
		Peer: peer.Config{
			Scheme:        scheme,
			Measure:       cfg.Measure,
			Schema:        cfg.Schema,
			UsePeerIndex:  cfg.UsePeerIndex,
			Replicas:      cfg.Replicas,
			LoadAware:     cfg.LoadAware,
			HotReplicas:   cfg.HotReplicas,
			HotThreshold:  cfg.HotThreshold,
			CacheCapacity: cfg.CacheCapacity,
			SigCache:      cfg.SigCache,
			HashWorkers:   cfg.HashWorkers,
		},
	})
	if err != nil {
		return nil, err
	}
	return &System{
		cfg:     cfg,
		cluster: cluster,
		scheme:  scheme,
		rng:     rand.New(rand.NewSource(cfg.Seed + 0x9e3779b9)),
		base:    make(map[string]*Relation),
	}, nil
}

// Peers returns the number of peers.
func (s *System) Peers() int { return s.cluster.N() }

// Lookup runs the paper's approximate range lookup for relation.attribute
// from a random querying peer. When cache is true (the paper's protocol)
// a non-exact query range is recorded at the l identifier owners so later
// similar queries can find it.
func (s *System) Lookup(rel, attribute string, q Range, cache bool) (Match, bool, error) {
	m, found, _, err := s.lookup(rel, attribute, q, cache, false)
	return m, found, err
}

// LookupTraced is Lookup returning a span tree of the whole protocol run:
// the signature-cache outcome, one child span per probe with its chord
// hops and detours, and the store decision.
func (s *System) LookupTraced(rel, attribute string, q Range, cache bool) (Match, bool, *Trace, error) {
	return s.lookup(rel, attribute, q, cache, true)
}

func (s *System) lookup(rel, attribute string, q Range, cache, traced bool) (Match, bool, *Trace, error) {
	if !q.Valid() {
		return Match{}, false, nil, fmt.Errorf("p2prange: invalid range %s", q)
	}
	origin := s.cluster.RandomPeer(s.rng)
	var sp *Trace
	if traced {
		sp = trace.New(fmt.Sprintf("lookup %s.%s %s from %s", rel, attribute, q, origin.Addr()))
	}
	lr, err := origin.LookupTraced(rel, attribute, q, cache, sp)
	sp.End()
	if err != nil {
		return Match{}, false, sp, err
	}
	return lr.Match, lr.Found, sp, nil
}

// LookupMulti answers a multi-interval predicate (a union of ranges, e.g.
// from an IN or OR condition): each component range runs the approximate
// lookup, and the result reports per-component matches plus the fraction
// of the whole set the cache covered.
func (s *System) LookupMulti(rel, attribute string, cache bool, ranges ...Range) (peer.SetLookupResult, error) {
	origin := s.cluster.RandomPeer(s.rng)
	return origin.LookupSet(rel, attribute, rangeset.NewSet(ranges...), cache)
}

// Publish registers a partition descriptor held by holderless caller: the
// descriptor is stored under its l identifiers from a random origin peer.
func (s *System) Publish(info PartitionInfo) error {
	origin := s.cluster.RandomPeer(s.rng)
	if info.Holder == "" {
		info.Holder = origin.Addr()
	}
	_, err := origin.Publish(info)
	return err
}

// AddBase registers a base relation at the system's data source, enabling
// SQL execution with source fallback and partition materialization.
func (s *System) AddBase(r *Relation) error {
	if s.cfg.Schema == nil {
		return errors.New("p2prange: Config.Schema required for relational data")
	}
	if _, ok := s.cfg.Schema.Relation(r.Schema.Name); !ok {
		return fmt.Errorf("p2prange: relation %q not in the global schema", r.Schema.Name)
	}
	s.base[r.Schema.Name] = r
	s.stats = nil // rebuilt lazily to include the new relation
	// Index orderable columns so partition materialization at the data
	// source is O(log n + k) per fetch.
	for _, col := range r.Schema.Columns {
		if col.Type != relation.TString {
			if err := r.BuildIndex(col.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// Base returns a registered base relation by name.
func (s *System) Base(rel string) (*Relation, bool) {
	r, ok := s.base[rel]
	return r, ok
}

// Query parses, plans, and executes a restricted SQL SELECT: selects are
// pushed to the leaves and resolved through the DHT (with base fallback
// and caching); joins and projection run at the querying peer.
func (s *System) Query(sql string) (*QueryResult, error) {
	res, _, err := s.query(sql, false)
	return res, err
}

// QueryTraced is Query returning a span tree of the execution: one child
// span per scan leaf (with the DHT lookup, its probes, and their chord
// hops inside) plus the join/projection stage.
func (s *System) QueryTraced(sql string) (*QueryResult, *Trace, error) {
	return s.query(sql, true)
}

func (s *System) query(sql string, traced bool) (*QueryResult, *Trace, error) {
	if s.cfg.Schema == nil {
		return nil, nil, errors.New("p2prange: Config.Schema required for SQL queries")
	}
	q, err := query.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	plan, err := query.BuildPlanWith(q, s.cfg.Schema, s.planOptions())
	if err != nil {
		return nil, nil, err
	}
	origin := s.cluster.RandomPeer(s.rng)
	src := &peer.DataSource{
		Peer:    origin,
		Base:    query.NewRelationSource(s.base),
		PadFrac: s.cfg.PadFrac,
	}
	var sp *Trace
	if traced {
		sp = trace.New(fmt.Sprintf("query from %s", origin.Addr()))
	}
	res, err := query.ExecuteTraced(plan, s.cfg.Schema, src, sp)
	sp.End()
	return res, sp, err
}

// Plan returns the physical plan for a SQL statement without executing
// it, for inspection (the paper's Fig. 1 plan shape).
func (s *System) Plan(sql string) (string, error) {
	if s.cfg.Schema == nil {
		return "", errors.New("p2prange: Config.Schema required for SQL queries")
	}
	q, err := query.Parse(sql)
	if err != nil {
		return "", err
	}
	plan, err := query.BuildPlanWith(q, s.cfg.Schema, s.planOptions())
	if err != nil {
		return "", err
	}
	return plan.String(), nil
}

func (s *System) planOptions() query.PlanOptions {
	opts := query.PlanOptions{AllowMultiAttribute: s.cfg.MultiAttribute}
	if s.cfg.UseStats {
		if s.stats == nil {
			s.stats = query.NewStats(s.base)
		}
		opts.Stats = s.stats
	}
	return opts
}

// Loads returns the stored-descriptor count per peer (Fig. 11's metric).
func (s *System) Loads() []int { return s.cluster.Loads() }

// Grow adds one peer through the real join protocol (bootstrap, ring
// stabilization, arc reclamation) and returns the new ring size.
func (s *System) Grow() (int, error) {
	if _, err := s.cluster.Join(); err != nil {
		return s.cluster.N(), err
	}
	return s.cluster.N(), nil
}

// Shrink removes a random peer gracefully: its buckets hand off to the
// successor before it departs. Returns the new ring size.
func (s *System) Shrink() (int, error) {
	if s.cluster.N() <= 1 {
		return s.cluster.N(), errors.New("p2prange: cannot shrink below one peer")
	}
	err := s.cluster.Leave(s.rng.Intn(s.cluster.N()))
	return s.cluster.N(), err
}

// CrashOne fails a random peer abruptly — no handoff, no notification —
// and lets the stabilization protocol repair the ring. Descriptors stored
// at the crashed peer are lost (they re-cache on future misses). Returns
// the new ring size.
func (s *System) CrashOne() (int, error) {
	if s.cluster.N() <= 1 {
		return s.cluster.N(), errors.New("p2prange: cannot crash the last peer")
	}
	err := s.cluster.Crash(s.rng.Intn(s.cluster.N()))
	return s.cluster.N(), err
}

// Ring returns the peers' chord references in ring order, for inspection.
func (s *System) Ring() []chord.Ref {
	refs := make([]chord.Ref, 0, s.cluster.N())
	for _, p := range s.cluster.Peers {
		refs = append(refs, p.Ref())
	}
	return refs
}
