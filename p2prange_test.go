package p2prange

import (
	"strings"
	"testing"

	"p2prange/internal/relation"
)

func newTestSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewDefaults(t *testing.T) {
	sys := newTestSystem(t, Config{})
	if sys.Peers() != 32 {
		t.Errorf("default peers = %d", sys.Peers())
	}
	if got := len(sys.Ring()); got != 32 {
		t.Errorf("ring size = %d", got)
	}
	if got := len(sys.Loads()); got != 32 {
		t.Errorf("loads = %d", got)
	}
}

func TestNewRangeValidation(t *testing.T) {
	if _, err := NewRange(5, 1); err == nil {
		t.Error("inverted range accepted")
	}
	r, err := NewRange(1, 5)
	if err != nil || r.Size() != 5 {
		t.Errorf("NewRange = %v, %v", r, err)
	}
}

func TestLookupCachingFlow(t *testing.T) {
	sys := newTestSystem(t, Config{Peers: 16, Measure: MatchContainment, Seed: 3})
	q, _ := NewRange(100, 200)
	if _, found, err := sys.Lookup("R", "a", q, true); err != nil || found {
		t.Fatalf("first lookup: found=%v err=%v", found, err)
	}
	m, found, err := sys.Lookup("R", "a", q, false)
	if err != nil || !found {
		t.Fatalf("repeat lookup: found=%v err=%v", found, err)
	}
	if m.Partition.Range != q || m.Score != 1 {
		t.Errorf("match = %+v", m)
	}
	// Similar range (0.95) hits too.
	q2, _ := NewRange(100, 195)
	m, found, err = sys.Lookup("R", "a", q2, false)
	if err != nil {
		t.Fatal(err)
	}
	if !found || m.Score != 1 {
		t.Errorf("similar lookup = %+v found=%v", m, found)
	}
	if _, _, err := sys.Lookup("R", "a", Range{Lo: 5, Hi: 1}, false); err == nil {
		t.Error("invalid range accepted")
	}
}

func TestPublishFlow(t *testing.T) {
	sys := newTestSystem(t, Config{Peers: 8, Seed: 4})
	q, _ := NewRange(0, 99)
	if err := sys.Publish(PartitionInfo{Relation: "R", Attribute: "a", Range: q}); err != nil {
		t.Fatal(err)
	}
	if _, found, err := sys.Lookup("R", "a", q, false); err != nil || !found {
		t.Errorf("published partition not found: %v, %v", found, err)
	}
}

func TestSQLRequiresSchema(t *testing.T) {
	sys := newTestSystem(t, Config{Peers: 4})
	if _, err := sys.Query("SELECT * FROM Patient"); err == nil {
		t.Error("query without schema accepted")
	}
	if _, err := sys.Plan("SELECT * FROM Patient"); err == nil {
		t.Error("plan without schema accepted")
	}
	r := relation.NewRelation(&RelationSchema{Name: "X", Columns: []Column{{Name: "a", Type: relation.TInt}}})
	if err := sys.AddBase(r); err == nil {
		t.Error("AddBase without schema accepted")
	}
}

func newMedicalSystem(t *testing.T) *System {
	t.Helper()
	sys := newTestSystem(t, Config{
		Peers:   16,
		Measure: MatchContainment,
		Seed:    5,
		Schema:  relation.MedicalSchema(),
	})
	rels, err := relation.GenerateMedical(relation.MedicalConfig{
		Patients: 200, Physicians: 10, Diagnoses: 500, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rels {
		if err := sys.AddBase(r); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func TestEndToEndSQL(t *testing.T) {
	sys := newMedicalSystem(t)
	const sql = `SELECT Prescription.prescription FROM Patient, Diagnosis, Prescription
		WHERE 30 <= age AND age <= 50 AND diagnosis = 'Glaucoma'
		AND Patient.patient_id = Diagnosis.patient_id
		AND '2000-01-01' <= date AND date <= '2002-12-31'
		AND Diagnosis.prescription_id = Prescription.prescription_id`

	res1, err := sys.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Rows) == 0 {
		t.Fatal("paper query returned nothing")
	}
	for _, recall := range res1.ScanRecall {
		if recall != 1 {
			t.Errorf("cold run should fall back to base with recall 1, got %v", res1.ScanRecall)
		}
	}
	// Identical re-run answers from the cache with the same rows.
	res2, err := sys.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != len(res1.Rows) {
		t.Errorf("cached run returned %d rows, first run %d", len(res2.Rows), len(res1.Rows))
	}
}

func TestEndToEndSQLSimilarQueryUsesCache(t *testing.T) {
	sys := newMedicalSystem(t)
	if _, err := sys.Query("SELECT patient_id FROM Patient WHERE 30 <= age AND age <= 50"); err != nil {
		t.Fatal(err)
	}
	// A 0.95-similar selection: the cached [30,50] partition contains it.
	res, err := sys.Query("SELECT patient_id FROM Patient WHERE 30 <= age AND age <= 49")
	if err != nil {
		t.Fatal(err)
	}
	if recall := res.ScanRecall["Patient.age"]; recall != 1 {
		t.Errorf("similar query recall = %g, want 1 via cached superset", recall)
	}
	// Row correctness regardless of path: all ages within bounds.
	for _, row := range res.Rows {
		if row[0].Kind != relation.TInt {
			t.Fatalf("bad projection %v", row)
		}
	}
}

func TestPlanRendering(t *testing.T) {
	sys := newMedicalSystem(t)
	plan, err := sys.Plan("SELECT name FROM Patient WHERE 30 <= age AND age <= 50")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Patient.age in [30,50]") {
		t.Errorf("plan = %q", plan)
	}
}

func TestAddBaseUnknownRelation(t *testing.T) {
	sys := newTestSystem(t, Config{Peers: 4, Schema: relation.MedicalSchema()})
	bad := relation.NewRelation(&RelationSchema{Name: "Nope", Columns: []Column{{Name: "a", Type: relation.TInt}}})
	if err := sys.AddBase(bad); err == nil {
		t.Error("AddBase accepted a relation outside the schema")
	}
}

func TestLoadsAccumulate(t *testing.T) {
	sys := newTestSystem(t, Config{Peers: 8, Seed: 7})
	for lo := int64(0); lo < 200; lo += 20 {
		q, _ := NewRange(lo, lo+50)
		if _, _, err := sys.Lookup("R", "a", q, true); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, l := range sys.Loads() {
		total += l
	}
	// 10 distinct ranges x 5 identifiers (some may dedupe on collisions).
	if total < 40 || total > 50 {
		t.Errorf("total stored = %d, want ≈ 50", total)
	}
}

func TestChurnThroughFacade(t *testing.T) {
	sys := newTestSystem(t, Config{Peers: 8, Seed: 9})
	q, _ := NewRange(100, 200)
	if _, _, err := sys.Lookup("R", "a", q, true); err != nil {
		t.Fatal(err)
	}
	n, err := sys.Grow()
	if err != nil || n != 9 {
		t.Fatalf("Grow = %d, %v", n, err)
	}
	n, err = sys.Shrink()
	if err != nil || n != 8 {
		t.Fatalf("Shrink = %d, %v", n, err)
	}
	// The cached range survives graceful churn.
	if _, found, err := sys.Lookup("R", "a", q, false); err != nil || !found {
		t.Errorf("descriptor lost through churn: found=%v err=%v", found, err)
	}
	n, err = sys.CrashOne()
	if err != nil || n != 7 {
		t.Fatalf("CrashOne = %d, %v", n, err)
	}
	// The system still serves queries after a crash.
	if _, _, err := sys.Lookup("R", "a", q, false); err != nil {
		t.Errorf("lookup after crash: %v", err)
	}
}

func TestShrinkFloor(t *testing.T) {
	sys := newTestSystem(t, Config{Peers: 1})
	if _, err := sys.Shrink(); err == nil {
		t.Error("shrank below one peer")
	}
	if _, err := sys.CrashOne(); err == nil {
		t.Error("crashed the last peer")
	}
}
