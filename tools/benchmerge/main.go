// Command benchmerge folds `go test -bench` output into a JSON benchmark
// report without disturbing the report's other keys.
//
//	go test -run '^$' -bench 'BenchmarkSegment' -benchmem ./internal/wal \
//	    | go run ./tools/benchmerge -out BENCH_load.json -key segment_reads
//
// It parses the standard benchmark result lines from stdin, normalizes
// them into {iters, ns_per_op, bytes_per_op, allocs_per_op} records, and
// writes them under -key in -out, creating the file if needed and
// preserving every other top-level key. When both an *Indexed and a
// *FullScan variant of the same benchmark are present, it also records
// their ns/op ratio — the before/after speedup for the read path.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// parseLine parses a `BenchmarkName-N  iters  X ns/op  [Y B/op  Z allocs/op]`
// line, returning the bare benchmark name (GOMAXPROCS suffix stripped)
// and false when the line is not a benchmark result.
func parseLine(line string) (string, benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", benchResult{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var r benchResult
	var err error
	if r.Iters, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", benchResult{}, false
	}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(v, 64)
			ok = err == nil
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	return name, r, ok
}

func run(out, key, note string) error {
	results := make(map[string]benchResult)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		if name, r, ok := parseLine(line); ok {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}

	section := map[string]any{"benchmarks": results}
	if note != "" {
		section["note"] = note
	}
	// A FullScan/Indexed pair is a before/after measurement of the same
	// operation; record the speedup explicitly.
	for name, indexed := range results {
		base, ok := strings.CutSuffix(name, "Indexed")
		if !ok {
			continue
		}
		if full, ok := results[base+"FullScan"]; ok && indexed.NsPerOp > 0 {
			section["speedup_indexed_vs_fullscan"] = full.NsPerOp / indexed.NsPerOp
		}
	}

	doc := make(map[string]any)
	if b, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(b, &doc); err != nil {
			return fmt.Errorf("%s: existing content is not JSON: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	doc[key] = section

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("benchmerge: %d results merged into %s under %q\n", len(results), out, key)
	return nil
}

func main() {
	out := flag.String("out", "BENCH_load.json", "JSON report to merge into")
	key := flag.String("key", "", "top-level key to write the results under")
	note := flag.String("note", "", "optional note recorded beside the results")
	flag.Parse()
	if *key == "" {
		fmt.Fprintln(os.Stderr, "benchmerge: -key required")
		os.Exit(2)
	}
	if err := run(*out, *key, *note); err != nil {
		fmt.Fprintf(os.Stderr, "benchmerge: %v\n", err)
		os.Exit(1)
	}
}
