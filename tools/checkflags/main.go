// Checkflags audits the documented command-line flag tables against the
// flags the commands actually declare, so `peerd -h` and the docs cannot
// drift apart silently.
//
// Declared flags are extracted from cmd/<name>/*.go (flag.String, .Bool,
// .Int, .Int64, .Uint64, .Float64, .Duration, and flag.Var calls).
// Documented flags are extracted from markdown sections headed by a
// heading that names `cmd/<name>`: inside such a section, every table
// row whose first cell carries backticked `-flag` tokens documents those
// flags. Three kinds of drift fail the check:
//
//   - a documented flag the command does not declare (stale docs)
//   - a declared flag missing from the command's table (undocumented)
//   - a command that declares flags but has no flag table anywhere
//
// Usage: go run ./tools/checkflags [root]   (root defaults to ".")
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var (
	declRE    = regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Uint64|Float64|Duration)\(\s*"([^"]+)"`)
	declVarRE = regexp.MustCompile(`flag\.Var\(\s*[^,]+,\s*\n?\s*"([^"]+)"`)
	headingRE = regexp.MustCompile("^#+ .*`cmd/([a-zA-Z0-9_-]+)`")
	tokenRE   = regexp.MustCompile("`-([a-zA-Z0-9][a-zA-Z0-9_-]*)`")
)

// declaredFlags scans one command directory for flag definitions.
func declaredFlags(dir string) (map[string]bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	flags := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, m := range declRE.FindAllStringSubmatch(string(data), -1) {
			flags[m[1]] = true
		}
		for _, m := range declVarRE.FindAllStringSubmatch(string(data), -1) {
			flags[m[1]] = true
		}
	}
	return flags, nil
}

// tableFlags holds one documented flag table: where it is and which
// flags its rows name.
type tableFlags struct {
	file  string
	line  int
	flags map[string]bool
}

// documentedFlags scans a markdown file for per-command flag tables.
func documentedFlags(path string) (map[string][]tableFlags, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string][]tableFlags{}
	var cmd string
	var cur *tableFlags
	flush := func() {
		if cur != nil && len(cur.flags) > 0 {
			out[cmd] = append(out[cmd], *cur)
		}
		cur = nil
	}
	for i, line := range strings.Split(string(data), "\n") {
		if m := headingRE.FindStringSubmatch(line); m != nil {
			flush()
			cmd = m[1]
			continue
		}
		if strings.HasPrefix(line, "#") { // any other heading ends the section
			flush()
			cmd = ""
			continue
		}
		if cmd == "" || !strings.HasPrefix(strings.TrimSpace(line), "|") {
			flush()
			continue
		}
		cells := strings.Split(strings.Trim(strings.TrimSpace(line), "|"), "|")
		if len(cells) == 0 {
			continue
		}
		first := strings.TrimSpace(cells[0])
		if strings.Trim(first, "-: ") == "" || first == "Flag" { // separator or header row
			if cur == nil {
				cur = &tableFlags{file: path, line: i + 1, flags: map[string]bool{}}
			}
			continue
		}
		toks := tokenRE.FindAllStringSubmatch(first, -1)
		if len(toks) == 0 {
			continue
		}
		if cur == nil {
			cur = &tableFlags{file: path, line: i + 1, flags: map[string]bool{}}
		}
		for _, tk := range toks {
			cur.flags[tk[1]] = true
		}
	}
	flush()
	return out, nil
}

func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}

	declared := map[string]map[string]bool{}
	cmds, err := os.ReadDir(filepath.Join(root, "cmd"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkflags:", err)
		os.Exit(2)
	}
	for _, c := range cmds {
		if !c.IsDir() {
			continue
		}
		flags, err := declaredFlags(filepath.Join(root, "cmd", c.Name()))
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkflags:", err)
			os.Exit(2)
		}
		if len(flags) > 0 {
			declared[c.Name()] = flags
		}
	}

	documented := map[string][]tableFlags{}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		tables, err := documentedFlags(path)
		if err != nil {
			return err
		}
		for cmd, ts := range tables {
			documented[cmd] = append(documented[cmd], ts...)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkflags:", err)
		os.Exit(2)
	}

	drift := 0
	for _, cmd := range sorted(mapKeys(declared)) {
		tables := documented[cmd]
		if len(tables) == 0 {
			fmt.Printf("cmd/%s: declares %d flags but no doc section has a flag table\n",
				cmd, len(declared[cmd]))
			drift++
			continue
		}
		for _, tb := range tables {
			for _, f := range sorted(tb.flags) {
				if !declared[cmd][f] {
					fmt.Printf("%s:%d: documents -%s, which cmd/%s does not declare\n",
						tb.file, tb.line, f, cmd)
					drift++
				}
			}
			for _, f := range sorted(declared[cmd]) {
				if !tb.flags[f] {
					fmt.Printf("%s:%d: flag table for cmd/%s is missing -%s\n",
						tb.file, tb.line, cmd, f)
					drift++
				}
			}
		}
	}
	for _, cmd := range sorted(mapKeys(documented)) {
		if _, ok := declared[cmd]; !ok {
			for _, tb := range documented[cmd] {
				fmt.Printf("%s:%d: flag table for unknown command cmd/%s\n", tb.file, tb.line, cmd)
				drift++
			}
		}
	}
	if drift > 0 {
		fmt.Printf("checkflags: %d drift(s) between docs and cmd/* flags\n", drift)
		os.Exit(1)
	}
	fmt.Println("checkflags: all flag tables match the declared flags")
}

func mapKeys[V any](m map[string]V) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}
