// Checklinks verifies that every relative markdown link in the repo's
// *.md files points at a file or directory that exists. It walks the
// tree it is run from (skipping .git), extracts [text](target) links,
// ignores external targets (http/https/mailto) and pure #anchors, and
// resolves the rest against the linking file's directory. Broken links
// are listed one per line and the exit status is 1.
//
// Usage: go run ./tools/checklinks [root]   (root defaults to ".")
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func external(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:")
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	broken := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if external(target) || strings.HasPrefix(target, "#") {
				continue
			}
			// Drop a trailing #section anchor; the file must still exist.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s: broken link %s\n", path, m[1])
				broken++
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "checklinks:", err)
		os.Exit(2)
	}
	if broken > 0 {
		fmt.Printf("checklinks: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Println("checklinks: all relative links resolve")
}
