#!/bin/sh
# Boots a 3-peer TCP ring — one peer with 30ms of injected RPC latency —
# drives a mixed workload with NO tracing flags set, and dumps the flight
# recorder's catches: the delayed peer's /debug/slow (its boot-time
# partition publishes blew the 25ms threshold), the querying member's
# \slow view, and the rangetop WORST column + events pane.
set -e
dir=$(mktemp -d)
trap 'kill $p1 $p2 $p3 2>/dev/null; rm -rf "$dir"' EXIT INT TERM

go build -o "$dir" ./cmd/peerd ./cmd/rangeql ./cmd/rangetop

# A partition to publish: dump the generated Patient relation from a
# throwaway simulated shell.
printf '\\dump Patient %s/patient.csv\n\\q\n' "$dir" | "$dir/rangeql" -peers 4 >/dev/null

"$dir/peerd" -listen 127.0.0.1:7201 -debug-addr 127.0.0.1:8201 -status 0 >"$dir/p1.log" 2>&1 &
p1=$!
sleep 1
"$dir/peerd" -listen 127.0.0.1:7202 -join 127.0.0.1:7201 -debug-addr 127.0.0.1:8202 -status 0 >"$dir/p2.log" 2>&1 &
p2=$!
sleep 2
# The induced slow path: every RPC this peer sends waits 30ms, so the
# partition publishes it performs at boot cross the slow threshold and
# land in its flight recorder — no tracing flag anywhere.
"$dir/peerd" -listen 127.0.0.1:7203 -join 127.0.0.1:7201 -debug-addr 127.0.0.1:8203 -status 0 \
	-fault-delay 30ms -publish "Patient=$dir/patient.csv:age:30-50" >"$dir/p3.log" 2>&1 &
p3=$!
sleep 4

echo "== mixed workload through an ephemeral member, then its \\slow view =="
printf 'SELECT name FROM Patient WHERE 30 <= age AND age <= 50\nSELECT name FROM Patient WHERE 55 <= age AND age <= 70\n\\slow\n\\q\n' \
	| "$dir/rangeql" -connect 127.0.0.1:7201

echo
echo "== /debug/slow on the delayed peer: kept traces, no flag was set =="
curl -sf http://127.0.0.1:8203/debug/slow || echo "(no slow queries kept on this peer)"

echo
echo "== rangetop: WORST column + events pane =="
"$dir/rangetop" -peers 127.0.0.1:8201,127.0.0.1:8202,127.0.0.1:8203 -once
