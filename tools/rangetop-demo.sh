#!/bin/sh
# Boots a 3-peer TCP ring with debug endpoints, drives one traced SQL
# query through an ephemeral rangeql ring member, and prints the rangetop
# cluster view once — the whole observability plane in ~15 seconds.
set -e
dir=$(mktemp -d)
trap 'kill $p1 $p2 $p3 2>/dev/null; rm -rf "$dir"' EXIT INT TERM

go build -o "$dir" ./cmd/peerd ./cmd/rangeql ./cmd/rangetop

"$dir/peerd" -listen 127.0.0.1:7101 -debug-addr 127.0.0.1:8101 -status 0 >"$dir/p1.log" 2>&1 &
p1=$!
sleep 1
"$dir/peerd" -listen 127.0.0.1:7102 -join 127.0.0.1:7101 -debug-addr 127.0.0.1:8102 -status 0 >"$dir/p2.log" 2>&1 &
p2=$!
"$dir/peerd" -listen 127.0.0.1:7103 -join 127.0.0.1:7101 -debug-addr 127.0.0.1:8103 -status 0 >"$dir/p3.log" 2>&1 &
p3=$!
sleep 3

echo "== traced query through an ephemeral ring member =="
"$dir/rangeql" -connect 127.0.0.1:7101 -trace \
	-e "SELECT name FROM Patient WHERE 30 <= age AND age <= 50"

echo
echo "== rangetop cluster view =="
"$dir/rangetop" -peers 127.0.0.1:8101,127.0.0.1:8102,127.0.0.1:8103 -once
