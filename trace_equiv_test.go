package p2prange

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"p2prange/internal/chord"
	"p2prange/internal/flight"
	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/relation"
	"p2prange/internal/sim"
	"p2prange/internal/trace"
)

// TestStitchedTreeTransportEquivalence pins the propagation contract: one
// lookup produces the identical stitched trace over the in-memory
// transport and over real TCP — same spans, same serve-side attribution,
// same hop counts — because the tree reflects the protocol, not the wire.
// The in-memory cluster is given the live peers' exact addresses, so both
// rings have the same chord IDs and ideal fingers.
func TestStitchedTreeTransportEquivalence(t *testing.T) {
	peers := liveRing(t, 6)
	// Stabilization makes successors correct; force every finger to its
	// ideal entry so live routing matches BuildStableRing's geometry
	// instead of depending on how many fix-fingers rounds have elapsed.
	for _, lp := range peers {
		for k := uint(0); k < chord.M; k++ {
			if err := lp.peer.Node().FixFinger(k); err != nil {
				t.Fatalf("fix finger %d at %s: %v", k, lp.Ref(), err)
			}
		}
	}

	addrs := make([]string, len(peers))
	for i, lp := range peers {
		addrs[i] = lp.Addr()
	}
	// Same scheme parameters as liveRing: K=4, L=3, seed 77.
	raw, err := minhash.NewScheme(Family(0), 4, 3, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := sim.NewCluster(sim.ClusterConfig{
		N:     len(addrs),
		Addrs: addrs,
		Peer: peer.Config{
			Scheme:  raw.Compiled(),
			Measure: MatchContainment,
			Schema:  relation.MedicalSchema(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Publish the same descriptor in both worlds: same holder address,
	// same identifiers, same owners.
	rg, _ := NewRange(30, 50)
	part := PartitionInfo{Relation: "Patient", Attribute: "age", Range: rg, Holder: addrs[2]}
	if err := peers[2].Publish(part); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Peers[2].Publish(part); err != nil {
		t.Fatal(err)
	}

	q, _ := NewRange(30, 49)
	_, found, liveTr, err := peers[4].LookupTraced("Patient", "age", q, false)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("lookup over TCP found nothing")
	}
	liveTree := liveTr.Tree(false)

	sp := trace.New(fmt.Sprintf("lookup %s.%s %s from %s", "Patient", "age", q, addrs[4]))
	lr, err := mem.Peers[4].LookupTraced("Patient", "age", q, false, sp)
	sp.End()
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Found {
		t.Fatal("lookup over the in-memory transport found nothing")
	}
	memTree := sp.Tree(false)

	if liveTree != memTree {
		t.Errorf("stitched trees differ across transports:\nTCP:\n%s\nin-memory:\n%s", liveTree, memTree)
	}

	// The tree must carry serve spans attributed to peers other than the
	// origin — the propagated fragments, not just local work. Coalesced
	// lookups serve probes through the batch protocol, so the grafted
	// spans read "serve FindBestBatch @addr".
	remotes := map[string]bool{}
	for _, line := range strings.Split(liveTree, "\n") {
		i := strings.Index(line, "serve FindBestBatch @")
		if i < 0 {
			continue
		}
		addr := strings.TrimSpace(line[i+len("serve FindBestBatch @"):])
		if addr != addrs[4] {
			remotes[addr] = true
		}
	}
	if len(remotes) == 0 {
		t.Errorf("no remote serve spans in the stitched tree:\n%s", liveTree)
	}
}

// TestFlightTailSamplingEquivalence pins the flight recorder's core
// promise: a query retained by tail sampling renders the same stitched
// tree the user would have gotten by asking for a trace up front. One
// lookup runs over TCP with no tracing flag anywhere — only the
// always-on recorder observes it — then the identical lookup runs under
// explicit LookupTraced. The kept entry's tree and the explicit trace
// must be byte-identical (timings excluded), and both must carry serve
// spans grafted back from remote peers: tail sampling loses nothing
// versus up-front tracing, because the two share one instrumented path.
func TestFlightTailSamplingEquivalence(t *testing.T) {
	peers := liveRing(t, 6)
	// Pin every finger to its ideal entry so both lookups route through
	// an identical, converged geometry.
	for _, lp := range peers {
		for k := uint(0); k < chord.M; k++ {
			if err := lp.peer.Node().FixFinger(k); err != nil {
				t.Fatalf("fix finger %d at %s: %v", k, lp.Ref(), err)
			}
		}
	}

	rg, _ := NewRange(30, 50)
	part := PartitionInfo{Relation: "Patient", Attribute: "age", Range: rg, Holder: peers[2].Addr()}
	if err := peers[2].Publish(part); err != nil {
		t.Fatal(err)
	}

	origin := peers[4]
	rec := origin.Flight()
	if !rec.On() {
		t.Fatal("flight recorder must be on with a default LiveConfig")
	}

	// The untraced run. cache=false on both lookups so neither mutates
	// partition-cache state the other would then route around.
	q, _ := NewRange(30, 49)
	_, found, err := origin.LookupOnce("Patient", "age", q, false)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("untraced lookup found nothing")
	}

	wantRoot := fmt.Sprintf("lookup %s.%s %s from %s", "Patient", "age", q, origin.Addr())
	var kept *flight.Entry
	for _, e := range rec.Entries(flight.RingRecent) {
		if e.Name == wantRoot {
			kept = e
		}
	}
	if kept == nil {
		t.Fatalf("untraced lookup %q not in the flight recorder's recent ring", wantRoot)
	}
	keptTree := kept.Root.Tree(false)

	// The same query under an explicit trace.
	_, found, tr, err := origin.LookupTraced("Patient", "age", q, false)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("explicitly traced lookup found nothing")
	}
	explicitTree := tr.Tree(false)

	if keptTree != explicitTree {
		t.Errorf("tail-sampled tree differs from the explicit trace:\nflight recorder:\n%s\nexplicit -trace:\n%s", keptTree, explicitTree)
	}

	// The acceptance bar: with no flags set, the retained tree is the
	// full stitched protocol run, remote serve fragments included — not
	// just the local root.
	remote := false
	for _, line := range strings.Split(keptTree, "\n") {
		i := strings.Index(line, "serve FindBestBatch @")
		if i < 0 {
			continue
		}
		if strings.TrimSpace(line[i+len("serve FindBestBatch @"):]) != origin.Addr() {
			remote = true
		}
	}
	if !remote {
		t.Errorf("no remote serve spans in the tail-sampled tree:\n%s", keptTree)
	}
}
