package p2prange

import (
	"strings"
	"testing"

	"p2prange/internal/relation"
)

// TestLookupTraceGolden pins the exact span tree of one range lookup on a
// small 8-peer system: publish a partition, look up the same range, and
// compare the timings-off rendering line for line. Everything in the tree
// is deterministic — simulated addresses are fixed, chord IDs are SHA-1
// of the address, the LSH key material and the querying-peer choice come
// from the seed — so any change to routing, probing, or trace rendering
// shows up as a diff here.
func TestLookupTraceGolden(t *testing.T) {
	sys := newTestSystem(t, Config{Peers: 8, Seed: 1})
	rg, err := NewRange(30, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(PartitionInfo{Relation: "Patient", Attribute: "age", Range: rg}); err != nil {
		t.Fatal(err)
	}
	_, found, tr, err := sys.LookupTraced("Patient", "age", rg, true)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("published range not found")
	}
	if tr == nil || !tr.On() {
		t.Fatal("LookupTraced returned no trace")
	}
	if tr.Duration() <= 0 {
		t.Error("trace root has no duration")
	}

	// The tree shows the coalesced wire protocol: one routing child per
	// probe, then one batch round trip per distinct owner carrying the
	// grafted serve span and the per-probe outcomes. This is the same
	// path untraced lookups take, so the flight recorder's always-sampled
	// root changes no RPC count.
	const want = `lookup Patient.age [30,50] from 10.0.0.0:4000
├─ sig: hits=0 extends=0 misses=1
├─ probe 1/5 id=cf7d4f9f
│  ├─ shortcut: 0b3371f0@10.0.0.2:4000 via successor list
│  └─ owner: 0b3371f0@10.0.0.2:4000 hops=1
├─ probe 2/5 id=69c1a38f
│  └─ owner: 7dceec98@10.0.0.0:4000 hops=0
├─ probe 3/5 id=86e9e0fd
│  ├─ shortcut: 90d9e78d@10.0.0.3:4000 via successor list
│  └─ owner: 90d9e78d@10.0.0.3:4000 hops=1
├─ probe 4/5 id=4cec38e0
│  ├─ shortcut: 534daff3@10.0.0.4:4000 via successor list
│  └─ owner: 534daff3@10.0.0.4:4000 hops=1
├─ probe 5/5 id=61cd1ab1
│  └─ owner: 7dceec98@10.0.0.0:4000 hops=0
├─ batch @10.0.0.2:4000: 1 probe(s)
│  ├─ serve FindBestBatch @10.0.0.2:4000
│  │  ├─ from: 10.0.0.0:4000
│  │  ├─ batch: 1 probe(s)
│  │  └─ best: id=cf7d4f9f [30,50] score=1.000
│  └─ match: probe 1: [30,50] score=1.000
├─ batch @10.0.0.0:4000: 2 probe(s)
│  ├─ serve FindBestBatch @10.0.0.0:4000
│  │  ├─ from: 10.0.0.0:4000
│  │  ├─ batch: 2 probe(s)
│  │  ├─ best: id=69c1a38f [30,50] score=1.000
│  │  └─ best: id=61cd1ab1 [30,50] score=1.000
│  ├─ match: probe 2: [30,50] score=1.000
│  └─ match: probe 5: [30,50] score=1.000
├─ batch @10.0.0.3:4000: 1 probe(s)
│  ├─ serve FindBestBatch @10.0.0.3:4000
│  │  ├─ from: 10.0.0.0:4000
│  │  ├─ batch: 1 probe(s)
│  │  └─ best: id=86e9e0fd [30,50] score=1.000
│  └─ match: probe 3: [30,50] score=1.000
├─ batch @10.0.0.4:4000: 1 probe(s)
│  ├─ serve FindBestBatch @10.0.0.4:4000
│  │  ├─ from: 10.0.0.0:4000
│  │  ├─ batch: 1 probe(s)
│  │  └─ best: id=4cec38e0 [30,50] score=1.000
│  └─ match: probe 4: [30,50] score=1.000
└─ store: skipped (exact match)
`
	if got := tr.Tree(false); got != want {
		t.Errorf("trace tree changed:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestQueryTraced checks the SQL path end to end: the trace tree covers
// every stage of the execution — the scan leaf with its DHT lookup and
// probes inside, the source fallback, and the join/projection stage.
func TestQueryTraced(t *testing.T) {
	sys := newTestSystem(t, Config{Peers: 8, Seed: 1, Schema: relation.MedicalSchema()})
	rels, err := relation.GenerateMedical(relation.DefaultMedicalConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rels {
		if err := sys.AddBase(r); err != nil {
			t.Fatal(err)
		}
	}
	res, tr, err := sys.QueryTraced("SELECT name FROM Patient WHERE 30 <= age AND age <= 50")
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || tr == nil {
		t.Fatal("QueryTraced returned nil result or trace")
	}
	tree := tr.Tree(false)
	for _, want := range []string{
		"scan Patient.age [30,50]",
		"lookup Patient.age [30,50]",
		"probe 1/5",
		"sig:",
		"fallback:",
		"join+project",
	} {
		if !strings.Contains(tree, want) {
			t.Errorf("trace tree missing %q:\n%s", want, tree)
		}
	}
	// Untraced execution of the same query must yield the same rows.
	sys2 := newTestSystem(t, Config{Peers: 8, Seed: 1, Schema: relation.MedicalSchema()})
	rels2, _ := relation.GenerateMedical(relation.DefaultMedicalConfig())
	for _, r := range rels2 {
		if err := sys2.AddBase(r); err != nil {
			t.Fatal(err)
		}
	}
	res2, err := sys2.Query("SELECT name FROM Patient WHERE 30 <= age AND age <= 50")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(res2.Rows) {
		t.Errorf("traced run returned %d rows, untraced %d", len(res.Rows), len(res2.Rows))
	}
}
